"""Bounded, lossy, duplicating, reordering channels and the network fabric.

The paper's communication model (Section 2):

* every directed pair of processors is connected by a channel of bounded
  capacity ``cap``;
* packets may be lost, reordered or duplicated, but not created spontaneously
  (an adversarial/arbitrary initial channel content is modelled by the fault
  injector stuffing channels with stale packets, bounded by ``O(N^2 * cap)``);
* *fair communication*: a packet sent infinitely often is received infinitely
  often — realized here by loss probabilities strictly below one.

A :class:`Channel` is a bounded FIFO of in-flight packets.  Delivery is driven
by the simulator: when a packet is accepted, a delivery event is scheduled
after a (seeded) random delay; reordering emerges from the variance of the
delay, and duplication schedules an extra delivery of a copy.

Hot-path design
---------------
The in-flight set is an insertion-ordered ``dict`` keyed by packet identity,
so accepting and completing a delivery are both O(1) (the previous ``deque``
paid an O(cap) scan in ``remove`` per delivered packet).  Identity keys are
required because payloads may be unhashable; the simulator always hands back
the exact object it scheduled.  Every per-channel counter update also feeds a
network-wide :class:`NetworkCounters` aggregate, making ``statistics()`` and
``total_in_flight()`` O(1) instead of an O(N^2) scan over channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.common.errors import SimulationError
from repro.sim.environment import NetworkEnvironment


@dataclass(frozen=True)
class Packet:
    """A low-level packet travelling on a directed channel.

    ``sender_label`` carries the anti-parallel data-link labelling described
    in Section 2 (packets are identified by the sender of the data link they
    belong to); higher layers usually just use ``payload``.
    """

    source: ProcessId
    destination: ProcessId
    payload: Any
    sender_label: Optional[ProcessId] = None


@dataclass
class ChannelConfig:
    """Behavioural parameters of a directed channel.

    Attributes
    ----------
    capacity:
        Maximum number of in-flight packets (the paper's ``cap``).  A send
        into a full channel silently drops the *new* packet, matching the
        paper ("the new packet might be omitted or some already sent packet
        may be lost").
    loss_probability:
        Probability that an accepted packet is dropped instead of delivered.
        Must be strictly below 1.0 to preserve fair communication.
    duplicate_probability:
        Probability that an accepted packet is delivered twice.
    min_delay / max_delay:
        Uniform delivery-delay bounds; a wide interval produces reordering.
    delay_quantum:
        When positive, the **arrival instant** of every delivery on this
        channel is rounded up to the next multiple of this quantum (applied
        by the simulator when it schedules the delivery event), so packets
        sent at different times land together in synchronized bursts at
        quantum boundaries — the burst-delivery adversarial scheduler.
        Zero (the default) keeps continuous arrivals.
    """

    capacity: int = 8
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    min_delay: float = 0.5
    max_delay: float = 1.5
    delay_quantum: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError("channel capacity must be at least 1")
        if not 0.0 <= self.loss_probability < 1.0:
            raise SimulationError("loss probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise SimulationError("duplicate probability must be in [0, 1]")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise SimulationError("delay bounds must satisfy 0 <= min <= max")
        if self.delay_quantum < 0:
            raise SimulationError("delay quantum must be non-negative")


class NetworkCounters:
    """Network-wide aggregate counters, maintained incrementally by channels."""

    __slots__ = ("sent", "delivered", "dropped", "duplicated", "in_flight")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped = 0
        self.duplicated = 0
        self.in_flight = 0


class Channel:
    """A directed, bounded-capacity, unreliable channel.

    The channel tracks the set of in-flight packets (for capacity accounting
    and for fault-injection snapshots) and delegates the actual timing of
    deliveries to the owning :class:`Network`.
    """

    __slots__ = (
        "source",
        "destination",
        "config",
        "_seed",
        "_rng",
        "_in_flight",
        "_totals",
        "sent_count",
        "delivered_count",
        "dropped_count",
        "duplicated_count",
    )

    def __init__(
        self,
        source: ProcessId,
        destination: ProcessId,
        config: ChannelConfig,
        seed: int,
        totals: Optional[NetworkCounters] = None,
    ) -> None:
        self.source = source
        self.destination = destination
        self.config = config
        self._seed = seed
        # The per-channel RNG is materialized on first draw: a Mersenne
        # Twister carries ~2.5 KB of state, and at n=512 the fabric holds
        # ~262k directed channels — most of which only ever see broadcast
        # traffic, whose draws come from the burst stream instead.  Lazy
        # construction changes no stream: ``make_rng`` is a pure function of
        # (seed, "channel", source, destination), so the first draw sees the
        # exact sequence the eager constructor produced.
        self._rng: Optional[Any] = None
        self._in_flight: Dict[int, Packet] = {}
        self._totals = totals if totals is not None else NetworkCounters()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.duplicated_count = 0

    @property
    def in_flight(self) -> Tuple[Packet, ...]:
        """Snapshot of packets currently in flight (oldest first)."""
        return tuple(self._in_flight.values())

    def occupancy(self) -> int:
        """Number of packets currently occupying channel capacity."""
        return len(self._in_flight)

    def try_accept(self, packet: Packet, rng: Optional[Any] = None) -> List[Tuple[Packet, float]]:
        """Try to accept *packet* for transmission.

        Returns a list of ``(packet, delay)`` pairs to be scheduled for
        delivery — empty when the packet was dropped (lost or channel full),
        length two when the packet was duplicated.  *rng* overrides the
        channel's own generator for every draw (used by the broadcast fast
        path, which feeds one shared stream for a whole burst).
        """
        totals = self._totals
        self.sent_count += 1
        totals.sent += 1
        in_flight = self._in_flight
        if len(in_flight) >= self.config.capacity:
            # Channel full: the new packet is omitted (paper, Section 2).
            self.dropped_count += 1
            totals.dropped += 1
            return []
        if rng is None:
            rng = self._rng or self._materialize_rng()
        loss = self.config.loss_probability
        if loss and rng.random() < loss:
            self.dropped_count += 1
            totals.dropped += 1
            return []
        in_flight[id(packet)] = packet
        totals.in_flight += 1
        deliveries = [(packet, self._draw_delay(rng))]
        dup = self.config.duplicate_probability
        if dup and rng.random() < dup:
            self.duplicated_count += 1
            totals.duplicated += 1
            deliveries.append((packet, self._draw_delay(rng)))
        return deliveries

    def record_blocked(self) -> None:
        """Count a send attempt that was dropped before entering the channel
        (used by the network for partitioned pairs)."""
        self.sent_count += 1
        self.dropped_count += 1
        self._totals.sent += 1
        self._totals.dropped += 1

    def stuff(self, packet: Packet) -> bool:
        """Force *packet* into the channel (fault injection of stale packets).

        Returns ``False`` when the channel is already at capacity: the paper's
        adversary is limited to ``cap`` stale packets per channel.
        """
        if len(self._in_flight) >= self.config.capacity:
            return False
        self._in_flight[id(packet)] = packet
        self._totals.in_flight += 1
        return True

    def complete_delivery(self, packet: Packet) -> bool:
        """Remove *packet* from the in-flight set; return whether it was there.

        Duplicated deliveries of the same packet only remove one in-flight
        slot; the second delivery still hands the payload to the receiver but
        does not consume capacity (it never did).
        """
        if self._in_flight.pop(id(packet), None) is None:
            return False
        self.delivered_count += 1
        self._totals.delivered += 1
        self._totals.in_flight -= 1
        return True

    def drop_in_flight(self) -> int:
        """Drop every in-flight packet (used when a processor crashes)."""
        dropped = len(self._in_flight)
        self._in_flight.clear()
        self.dropped_count += dropped
        self._totals.dropped += dropped
        self._totals.in_flight -= dropped
        return dropped

    def _draw_delay(self, rng: Optional[Any] = None) -> float:
        lo, hi = self.config.min_delay, self.config.max_delay
        if hi <= lo:
            return lo
        if rng is None:
            rng = self._rng or self._materialize_rng()
        return rng.uniform(lo, hi)

    def _materialize_rng(self) -> Any:
        rng = make_rng(self._seed, "channel", self.source, self.destination)
        self._rng = rng
        return rng


class Network:
    """The fully-connected fabric of directed :class:`Channel` objects.

    The network is lazy: a channel is created the first time a packet flows
    between a pair of processors, resolving its configuration through the
    :class:`~repro.sim.environment.NetworkEnvironment` — the time-varying
    link-state layer that holds per-pair overrides, dynamic overlays, link
    policies (so late joiners inherit the active shaping) and the directed,
    possibly leaky partitions.  Delivery scheduling is delegated to a
    callback installed by the :class:`~repro.sim.simulator.Simulator`.
    """

    def __init__(
        self,
        default_config: Optional[ChannelConfig] = None,
        seed: int = 0,
        environment: Optional[NetworkEnvironment] = None,
        broadcast_streams: str = "shared",
    ) -> None:
        if broadcast_streams not in ("shared", "per_source"):
            raise SimulationError(
                f"broadcast_streams must be 'shared' or 'per_source', "
                f"got {broadcast_streams!r}"
            )
        self._default_config = default_config or ChannelConfig()
        self._seed = seed
        self._channels: Dict[Tuple[ProcessId, ProcessId], Channel] = {}
        self.environment = environment or NetworkEnvironment(
            self._default_config, seed=seed
        )
        self.environment.attach(self)
        #: Names of partitions installed via the legacy two-group wrapper;
        #: :meth:`heal_partitions` heals exactly these.
        self._legacy_partitions: List[str] = []
        self._schedule_delivery: Optional[Callable[[Channel, Packet, float], None]] = None
        self._schedule_deliveries: Optional[
            Callable[[List[Tuple[Channel, Packet, float]]], None]
        ] = None
        self._totals = NetworkCounters()
        # Dedicated stream(s) for batched broadcasts: every delay of a
        # ``send_many`` burst is drawn from one RNG, which keeps the burst
        # deterministic while touching a single generator instead of one per
        # destination channel.  ``"shared"`` uses a single global stream
        # consumed in send order (the historical behaviour); ``"per_source"``
        # derives one stream per sending processor, so a burst's draws depend
        # only on that sender's own broadcast history — the property the
        # sharded simulator needs, since no global send order exists across
        # shards.
        self.broadcast_streams = broadcast_streams
        self._broadcast_rng = make_rng(seed, "broadcast")
        self._broadcast_rngs: Dict[ProcessId, Any] = {}

    def bind_scheduler(
        self,
        schedule_delivery: Callable[[Channel, Packet, float], None],
        schedule_deliveries: Optional[
            Callable[[List[Tuple[Channel, Packet, float]]], None]
        ] = None,
    ) -> None:
        """Install the delivery-scheduling callbacks (done by the simulator).

        ``schedule_deliveries`` is the optional bulk variant used by
        :meth:`send_many`; when absent, bursts fall back to the per-packet
        callback.
        """
        self._schedule_delivery = schedule_delivery
        self._schedule_deliveries = schedule_deliveries

    @property
    def default_config(self) -> ChannelConfig:
        """The fabric-wide fallback :class:`ChannelConfig`.

        Rebinding it invalidates the environment's memoized link resolution —
        the default is the bottom layer of the resolve stack, so a cached
        entry computed against the old default would otherwise go stale.
        """
        return self._default_config

    @default_config.setter
    def default_config(self, config: ChannelConfig) -> None:
        self._default_config = config
        environment = getattr(self, "environment", None)
        if environment is not None:
            environment._invalidate_resolution()

    def set_channel_config(
        self, source: ProcessId, destination: ProcessId, config: ChannelConfig
    ) -> None:
        """Override the channel configuration for one directed pair.

        Thin wrapper over the environment's explicit-override layer, kept
        because the install protocol is load-bearing in tests and workloads.
        """
        self.environment.set_link_config(source, destination, config)

    def channel(self, source: ProcessId, destination: ProcessId) -> Channel:
        """Return (creating if needed) the directed channel source→destination.

        The channel's configuration is **pulled** through the environment's
        memoized :meth:`~repro.sim.environment.NetworkEnvironment.resolve` on
        every access: the steady-state send path pays one cache-dict lookup,
        a processor joining mid-run gets channels shaped by whatever program
        is currently active, and an environment mutation (overlay push,
        override, policy) is O(1) — it invalidates the cache instead of
        walking and re-syncing every touched channel.
        """
        key = (source, destination)
        chan = self._channels.get(key)
        if chan is None:
            config = self.environment.resolve(source, destination)
            chan = Channel(source, destination, config, seed=self._seed, totals=self._totals)
            self._channels[key] = chan
        else:
            chan.config = self.environment.resolve(source, destination)
        return chan

    def channels(self) -> Iterable[Channel]:
        """Iterate over every channel created so far."""
        return self._channels.values()

    def partition(self, group_a: Iterable[ProcessId], group_b: Iterable[ProcessId]) -> None:
        """Install a symmetric, leak-free partition between the two groups.

        Compatibility wrapper over :meth:`NetworkEnvironment.partition`; use
        the environment directly for one-way partitions, leaks and
        per-partition heal.
        """
        self._legacy_partitions.append(self.environment.partition(group_a, group_b))

    def heal_partitions(self) -> None:
        """Heal every partition installed through this wrapper.

        Scoped to wrapper-created partitions on purpose: a workload calling
        the historical heal-all must not erase named partitions owned by a
        concurrently running environment program (pre-environment behaviour
        is preserved, since back then every partition came through here).
        """
        for name in self._legacy_partitions:
            self.environment.heal(name)
        self._legacy_partitions.clear()

    def is_partitioned(self, source: ProcessId, destination: ProcessId) -> bool:
        """Return True when a partition currently blocks the directed pair."""
        return self.environment.is_blocked(source, destination)

    def send(self, packet: Packet) -> None:
        """Submit *packet* for transmission on its directed channel."""
        if self._schedule_delivery is None:
            raise SimulationError("network is not bound to a simulator")
        chan = self.channel(packet.source, packet.destination)
        environment = self.environment
        if environment._blocked and not environment.permits(
            packet.source, packet.destination
        ):
            chan.record_blocked()
            return
        for pkt, delay in chan.try_accept(packet):
            self._schedule_delivery(chan, pkt, delay)

    def send_many(self, source: ProcessId, payloads: Iterable[Tuple[ProcessId, Any]]) -> int:
        """Submit one packet per ``(destination, payload)`` pair as a burst.

        A broadcast fast path: all delivery delays of the burst are drawn from
        the network's dedicated broadcast RNG stream and the resulting events
        are scheduled with one bulk call.  Returns the number of packets
        accepted into channels.
        """
        if self._schedule_delivery is None:
            raise SimulationError("network is not bound to a simulator")
        environment = self.environment
        blocked = environment._blocked
        if self.broadcast_streams == "shared":
            rng = self._broadcast_rng
        else:
            rng = self._broadcast_rngs.get(source)
            if rng is None:
                rng = self._broadcast_rngs[source] = make_rng(
                    self._seed, "broadcast", source
                )
        batch: List[Tuple[Channel, Packet, float]] = []
        accepted = 0
        for destination, payload in payloads:
            packet = Packet(source=source, destination=destination, payload=payload)
            chan = self.channel(source, destination)
            if blocked and not environment.permits(source, destination):
                chan.record_blocked()
                continue
            deliveries = chan.try_accept(packet, rng=rng)
            if deliveries:
                accepted += 1
                for pkt, delay in deliveries:
                    batch.append((chan, pkt, delay))
        if batch:
            if self._schedule_deliveries is not None:
                self._schedule_deliveries(batch)
            else:
                for chan, packet, delay in batch:
                    self._schedule_delivery(chan, packet, delay)
        return accepted

    def stuff_channel(self, source: ProcessId, destination: ProcessId, payload: Any) -> bool:
        """Inject a stale packet into a channel and schedule its delivery.

        Used by the transient-fault injector to model arbitrary initial
        channel contents.  Returns ``False`` when the channel was full.
        """
        if self._schedule_delivery is None:
            raise SimulationError("network is not bound to a simulator")
        chan = self.channel(source, destination)
        packet = Packet(source=source, destination=destination, payload=payload)
        if not chan.stuff(packet):
            return False
        self._schedule_delivery(chan, packet, chan._draw_delay())
        return True

    def total_in_flight(self) -> int:
        """Total packets currently in flight across all channels (O(1))."""
        return self._totals.in_flight

    def statistics(self) -> Dict[str, int]:
        """Aggregate send/deliver/drop/duplicate counters over all channels.

        Maintained incrementally on every channel operation, so this is O(1)
        regardless of the number of channels.
        """
        totals = self._totals
        return {
            "sent": totals.sent,
            "delivered": totals.delivered,
            "dropped": totals.dropped,
            "duplicated": totals.duplicated,
        }
