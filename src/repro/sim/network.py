"""Bounded, lossy, duplicating, reordering channels and the network fabric.

The paper's communication model (Section 2):

* every directed pair of processors is connected by a channel of bounded
  capacity ``cap``;
* packets may be lost, reordered or duplicated, but not created spontaneously
  (an adversarial/arbitrary initial channel content is modelled by the fault
  injector stuffing channels with stale packets, bounded by ``O(N^2 * cap)``);
* *fair communication*: a packet sent infinitely often is received infinitely
  often — realized here by loss probabilities strictly below one.

A :class:`Channel` is a bounded FIFO of in-flight packets.  Delivery is driven
by the simulator: when a packet is accepted, a delivery event is scheduled
after a (seeded) random delay; reordering emerges from the variance of the
delay, and duplication schedules an extra delivery of a copy.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.common.rng import make_rng
from repro.common.types import ProcessId
from repro.common.errors import SimulationError


@dataclass(frozen=True)
class Packet:
    """A low-level packet travelling on a directed channel.

    ``sender_label`` carries the anti-parallel data-link labelling described
    in Section 2 (packets are identified by the sender of the data link they
    belong to); higher layers usually just use ``payload``.
    """

    source: ProcessId
    destination: ProcessId
    payload: Any
    sender_label: Optional[ProcessId] = None


@dataclass
class ChannelConfig:
    """Behavioural parameters of a directed channel.

    Attributes
    ----------
    capacity:
        Maximum number of in-flight packets (the paper's ``cap``).  A send
        into a full channel silently drops the *new* packet, matching the
        paper ("the new packet might be omitted or some already sent packet
        may be lost").
    loss_probability:
        Probability that an accepted packet is dropped instead of delivered.
        Must be strictly below 1.0 to preserve fair communication.
    duplicate_probability:
        Probability that an accepted packet is delivered twice.
    min_delay / max_delay:
        Uniform delivery-delay bounds; a wide interval produces reordering.
    """

    capacity: int = 8
    loss_probability: float = 0.0
    duplicate_probability: float = 0.0
    min_delay: float = 0.5
    max_delay: float = 1.5

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SimulationError("channel capacity must be at least 1")
        if not 0.0 <= self.loss_probability < 1.0:
            raise SimulationError("loss probability must be in [0, 1)")
        if not 0.0 <= self.duplicate_probability <= 1.0:
            raise SimulationError("duplicate probability must be in [0, 1]")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise SimulationError("delay bounds must satisfy 0 <= min <= max")


class Channel:
    """A directed, bounded-capacity, unreliable channel.

    The channel tracks the set of in-flight packets (for capacity accounting
    and for fault-injection snapshots) and delegates the actual timing of
    deliveries to the owning :class:`Network`.
    """

    def __init__(
        self,
        source: ProcessId,
        destination: ProcessId,
        config: ChannelConfig,
        seed: int,
    ) -> None:
        self.source = source
        self.destination = destination
        self.config = config
        self._rng = make_rng(seed, "channel", source, destination)
        self._in_flight: Deque[Packet] = deque()
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_count = 0
        self.duplicated_count = 0

    @property
    def in_flight(self) -> Tuple[Packet, ...]:
        """Snapshot of packets currently in flight (oldest first)."""
        return tuple(self._in_flight)

    def occupancy(self) -> int:
        """Number of packets currently occupying channel capacity."""
        return len(self._in_flight)

    def try_accept(self, packet: Packet) -> List[Tuple[Packet, float]]:
        """Try to accept *packet* for transmission.

        Returns a list of ``(packet, delay)`` pairs to be scheduled for
        delivery — empty when the packet was dropped (lost or channel full),
        length two when the packet was duplicated.
        """
        self.sent_count += 1
        if len(self._in_flight) >= self.config.capacity:
            # Channel full: the new packet is omitted (paper, Section 2).
            self.dropped_count += 1
            return []
        if self._rng.random() < self.config.loss_probability:
            self.dropped_count += 1
            return []
        self._in_flight.append(packet)
        deliveries = [(packet, self._draw_delay())]
        if self._rng.random() < self.config.duplicate_probability:
            self.duplicated_count += 1
            deliveries.append((packet, self._draw_delay()))
        return deliveries

    def stuff(self, packet: Packet) -> bool:
        """Force *packet* into the channel (fault injection of stale packets).

        Returns ``False`` when the channel is already at capacity: the paper's
        adversary is limited to ``cap`` stale packets per channel.
        """
        if len(self._in_flight) >= self.config.capacity:
            return False
        self._in_flight.append(packet)
        return True

    def complete_delivery(self, packet: Packet) -> bool:
        """Remove *packet* from the in-flight set; return whether it was there.

        Duplicated deliveries of the same packet only remove one in-flight
        slot; the second delivery still hands the payload to the receiver but
        does not consume capacity (it never did).
        """
        try:
            self._in_flight.remove(packet)
        except ValueError:
            return False
        self.delivered_count += 1
        return True

    def drop_in_flight(self) -> int:
        """Drop every in-flight packet (used when a processor crashes)."""
        dropped = len(self._in_flight)
        self._in_flight.clear()
        self.dropped_count += dropped
        return dropped

    def _draw_delay(self) -> float:
        lo, hi = self.config.min_delay, self.config.max_delay
        if hi <= lo:
            return lo
        return self._rng.uniform(lo, hi)


class Network:
    """The fully-connected fabric of directed :class:`Channel` objects.

    The network is lazy: a channel is created the first time a packet flows
    between a pair of processors, using the default :class:`ChannelConfig`
    (or a per-pair override installed via :meth:`set_channel_config`).
    Delivery scheduling is delegated to a callback installed by the
    :class:`~repro.sim.simulator.Simulator`.
    """

    def __init__(self, default_config: Optional[ChannelConfig] = None, seed: int = 0) -> None:
        self.default_config = default_config or ChannelConfig()
        self._seed = seed
        self._channels: Dict[Tuple[ProcessId, ProcessId], Channel] = {}
        self._overrides: Dict[Tuple[ProcessId, ProcessId], ChannelConfig] = {}
        self._schedule_delivery: Optional[Callable[[Channel, Packet, float], None]] = None
        self._partitions: set[frozenset[ProcessId]] = set()

    def bind_scheduler(self, schedule_delivery: Callable[[Channel, Packet, float], None]) -> None:
        """Install the delivery-scheduling callback (done by the simulator)."""
        self._schedule_delivery = schedule_delivery

    def set_channel_config(
        self, source: ProcessId, destination: ProcessId, config: ChannelConfig
    ) -> None:
        """Override the channel configuration for one directed pair."""
        self._overrides[(source, destination)] = config
        existing = self._channels.get((source, destination))
        if existing is not None:
            existing.config = config

    def channel(self, source: ProcessId, destination: ProcessId) -> Channel:
        """Return (creating if needed) the directed channel source→destination."""
        key = (source, destination)
        chan = self._channels.get(key)
        if chan is None:
            config = self._overrides.get(key, self.default_config)
            chan = Channel(source, destination, config, seed=self._seed)
            self._channels[key] = chan
        return chan

    def channels(self) -> Iterable[Channel]:
        """Iterate over every channel created so far."""
        return self._channels.values()

    def partition(self, group_a: Iterable[ProcessId], group_b: Iterable[ProcessId]) -> None:
        """Install a (temporary) partition: packets between the groups are lost."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partitions(self) -> None:
        """Remove every installed partition."""
        self._partitions.clear()

    def is_partitioned(self, source: ProcessId, destination: ProcessId) -> bool:
        """Return True when the pair is currently separated by a partition."""
        return frozenset((source, destination)) in self._partitions

    def send(self, packet: Packet) -> None:
        """Submit *packet* for transmission on its directed channel."""
        if self._schedule_delivery is None:
            raise SimulationError("network is not bound to a simulator")
        if self.is_partitioned(packet.source, packet.destination):
            chan = self.channel(packet.source, packet.destination)
            chan.sent_count += 1
            chan.dropped_count += 1
            return
        chan = self.channel(packet.source, packet.destination)
        for pkt, delay in chan.try_accept(packet):
            self._schedule_delivery(chan, pkt, delay)

    def stuff_channel(self, source: ProcessId, destination: ProcessId, payload: Any) -> bool:
        """Inject a stale packet into a channel and schedule its delivery.

        Used by the transient-fault injector to model arbitrary initial
        channel contents.  Returns ``False`` when the channel was full.
        """
        if self._schedule_delivery is None:
            raise SimulationError("network is not bound to a simulator")
        chan = self.channel(source, destination)
        packet = Packet(source=source, destination=destination, payload=payload)
        if not chan.stuff(packet):
            return False
        self._schedule_delivery(chan, packet, chan._draw_delay())
        return True

    def total_in_flight(self) -> int:
        """Total packets currently in flight across all channels."""
        return sum(chan.occupancy() for chan in self._channels.values())

    def statistics(self) -> Dict[str, int]:
        """Aggregate send/deliver/drop/duplicate counters over all channels."""
        stats = {"sent": 0, "delivered": 0, "dropped": 0, "duplicated": 0}
        for chan in self._channels.values():
            stats["sent"] += chan.sent_count
            stats["delivered"] += chan.delivered_count
            stats["dropped"] += chan.dropped_count
            stats["duplicated"] += chan.duplicated_count
        return stats
