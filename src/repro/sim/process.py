"""Process abstraction: the unit of computation in the interleaving model.

A :class:`Process` owns local state and reacts to two kinds of input events
(paper, Section 2): the arrival of a packet, and a periodic timer that
triggers the next iteration of its *do-forever loop*.  Each handler runs as a
single atomic step of the interleaving model.

Concrete protocol layers (data link, failure detector, recSA, recMA, joining,
applications) are implemented as plain Python objects owned by a process (see
:mod:`repro.sim.cluster`); this module only provides the scheduling plumbing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from repro.common.types import ProcessId
from repro.common.logging_utils import get_logger

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator
    from repro.transport.base import Transport

_log = get_logger("process")


@dataclass
class ProcessContext:
    """Capabilities handed to a process by its transport backend.

    A context exposes exactly what the system model allows a processor to do:
    read the (local) clock, draw local randomness, send packets, and arm
    timers.  Processes never touch the backend directly — the same protocol
    code runs over the deterministic simulator
    (:class:`repro.transport.sim.SimTransport`) and the asyncio runtime
    (:class:`repro.runtime.transport.AsyncioTransport`).
    """

    pid: ProcessId
    transport: "Transport"
    rng: random.Random

    @property
    def simulator(self) -> "Simulator":
        """The underlying :class:`Simulator` (sim backend only).

        Back-compat accessor for harness/instrumentation code written before
        the transport split; raises :class:`AttributeError` on backends that
        are not simulator-based.
        """
        return self.transport.simulator  # type: ignore[attr-defined]

    def now(self) -> float:
        """The transport clock, for metrics and traces only.

        Contract (see :mod:`repro.transport.base`): no protocol layer calls
        this — pacing is iteration-count based throughout the stack
        (heartbeat ``idle_resend_interval``, reliable-broadcast round
        counters), because the paper's algorithms are time-free.  Under the
        simulator this is the deterministic simulated clock; under the
        asyncio runtime it is wall clock rescaled to sim-time units, so
        values are backend-relative and must never feed algorithm state.
        """
        return self.transport.now()

    def send(self, destination: ProcessId, payload: Any) -> None:
        """Send *payload* to *destination* over the unreliable network."""
        self.transport.send(self.pid, destination, payload)

    def send_many(self, payloads: Any) -> int:
        """Send a burst of ``(destination, payload)`` pairs (broadcast fast path)."""
        return self.transport.send_many(self.pid, payloads)

    def set_timer(self, delay: float, callback: Callable[[], None], label: str = "") -> Any:
        """Arm a one-shot timer firing after *delay* time units."""
        return self.transport.set_timer(self.pid, delay, callback, label=label)

    def cancel_timer(self, handle: Any) -> None:
        """Cancel a timer previously armed with :meth:`set_timer`."""
        self.transport.cancel_timer(handle)


class Process:
    """Base class for simulated processors.

    Subclasses override :meth:`on_start`, :meth:`on_timer` and
    :meth:`on_receive`.  The default implementation arms a periodic timer with
    period ``step_interval`` (with a small seeded jitter so processors do not
    run in lockstep) and calls :meth:`on_timer` on each tick — this models the
    "periodic timer triggering pi to (re)send" input event of the paper.
    """

    def __init__(self, pid: ProcessId, step_interval: float = 1.0, jitter: float = 0.2) -> None:
        self.pid = pid
        self.step_interval = step_interval
        self.jitter = jitter
        self.context: Optional[ProcessContext] = None
        self.crashed = False
        self.started = False
        self.step_count = 0
        self.received_count = 0
        self._timer_handle: Any = None

    # ------------------------------------------------------------------ API
    def bind(self, context: ProcessContext) -> None:
        """Attach the simulator-provided context (called by the simulator)."""
        self.context = context

    def start(self) -> None:
        """Begin executing: run :meth:`on_start` and arm the periodic timer."""
        if self.context is None:
            raise RuntimeError(f"process {self.pid} not bound to a simulator")
        if self.crashed or self.started:
            return
        self.started = True
        self.on_start()
        self._arm_timer()

    def crash(self) -> None:
        """Stop-fail: the process takes no further steps and never rejoins."""
        self.crashed = True
        if self._timer_handle is not None and self.context is not None:
            self.context.cancel_timer(self._timer_handle)
            self._timer_handle = None

    def deliver(self, sender: ProcessId, payload: Any) -> None:
        """Entry point used by the simulator when a packet arrives."""
        if self.crashed or not self.started:
            return
        self.received_count += 1
        self.on_receive(sender, payload)

    # ------------------------------------------------------------ overrides
    def on_start(self) -> None:
        """Hook executed once when the process starts."""

    def on_timer(self) -> None:
        """One iteration of the do-forever loop."""

    def on_receive(self, sender: ProcessId, payload: Any) -> None:
        """Handle an incoming high-level message."""

    # ------------------------------------------------------------ internals
    def _arm_timer(self) -> None:
        if self.crashed or self.context is None:
            return
        delay = self.step_interval
        if self.jitter > 0:
            delay += self.context.rng.uniform(-self.jitter, self.jitter) * self.step_interval
            delay = max(delay, self.step_interval * 0.1)
        self._timer_handle = self.context.set_timer(
            delay, self._timer_fired, label=f"step:{self.pid}"
        )

    def _timer_fired(self) -> None:
        if self.crashed:
            return
        self.step_count += 1
        try:
            self.on_timer()
        finally:
            self._arm_timer()

    # ----------------------------------------------------------- inspection
    def describe(self) -> Dict[str, Any]:
        """A small status dictionary used by traces and debugging helpers."""
        return {
            "pid": self.pid,
            "crashed": self.crashed,
            "started": self.started,
            "steps": self.step_count,
            "received": self.received_count,
        }
