"""Converged-state snapshot/restore of a running simulation.

A :class:`SimSnapshot` captures the *complete* state of a simulation at an
instant between events — the event queue (including pending timers and
in-flight delivery events), every channel's in-flight ledger, each process's
full protocol state (recSA / recMA / failure detector / heartbeat links /
stack services), the :class:`~repro.sim.environment.NetworkEnvironment`'s
layer stack, partitions and transition log, and every seeded RNG stream —
and can restore any number of fresh, fully independent copies.

The determinism guarantee
-------------------------
``restore()`` followed by running the copy produces **byte-identical**
results (``executed_events``, ``delivered_messages``, convergence times,
scenario result dictionaries) to running the original — or a cold run of the
same seed — uninterrupted.  The audit harness builds on this: the expensive
pre-corruption bootstrap prefix of a sweep is computed once, snapshotted,
and fanned out across corruption cases (see ``repro.audit.harness``), and
``run_matrix`` workers inherit parent-captured snapshots copy-on-write
through ``fork``.

How it works
------------
Capture and restore are structural deep copies of the object graph.  Two
properties of the codebase make that sound:

* **No foreign closures in live state.**  Everything the event queue or any
  long-lived structure holds is either a bound method, an
  :class:`~repro.sim.events.Action`, or a small callable object — all of
  which ``deepcopy`` remaps onto the copied graph.  A plain closure would be
  shared (functions copy atomically) and would keep mutating the *original*
  graph; the workload/scheduler/monitor layers are written to never store
  one (this is enforced by the snapshot determinism tests).
* **Identity-keyed ledgers are re-keyed.**  Channels track in-flight packets
  in a dict keyed by ``id(packet)`` for O(1) completion; object ids change
  under deepcopy, so :func:`_rekey_in_flight` rebuilds those ledgers (in
  order) after every copy.

Restrictions
------------
* A snapshot must be taken **between events** (never from inside a running
  callback): capture while a handler is mid-flight would miss its pending
  local mutations.
* Objects reachable from the graph must be deepcopy-able; registered link
  policies must be pure per pair (the built-ins are frozen dataclasses).
* Wall-clock measurements are obviously not reproduced — only simulated
  state is.
"""

from __future__ import annotations

import copy
import pickle
from typing import Any

from repro.common.errors import SimulationError


def _find_simulator(subject: Any) -> Any:
    """Locate the simulator inside *subject* (a run, cluster or simulator)."""
    seen = 0
    node = subject
    while node is not None and seen < 4:
        if hasattr(node, "events") and hasattr(node, "network"):
            return node  # quacks like a Simulator
        node = getattr(node, "simulator", None) or getattr(node, "cluster", None)
        seen += 1
    raise SimulationError(
        f"cannot find a simulator inside {type(subject).__name__!r}; "
        "capture a Simulator, a Cluster or a ScenarioRun"
    )


def _rekey_in_flight(simulator: Any) -> None:
    """Rebuild every channel's identity-keyed in-flight ledger.

    The ledger maps ``id(packet) -> packet``; after a deep copy the values
    are fresh objects while the keys still hold the *original* ids, so a
    delivery completing on the copy would miss the ledger and corrupt the
    capacity accounting.  Rebuilding preserves insertion order, which is the
    only ordering the channel relies on.
    """
    for channel in simulator.network.channels():
        in_flight = channel._in_flight
        if in_flight:
            channel._in_flight = {id(packet): packet for packet in in_flight.values()}


class SimSnapshot:
    """An immutable, restorable copy of a simulation's complete state.

    ``capture`` accepts a :class:`~repro.sim.simulator.Simulator`, a
    :class:`~repro.sim.cluster.Cluster`, or a scenario
    :class:`~repro.scenarios.runner.ScenarioRun` (the most useful unit: it
    carries the monitor/tracker hooks and the phase machine's resume state
    along with the cluster).  Each ``restore()`` yields an independent copy;
    the snapshot itself is never handed out, so it can fan out any number of
    runs.
    """

    def __init__(self, state: Any) -> None:
        self._state = state
        self._restores = 0

    @classmethod
    def capture(cls, subject: Any) -> "SimSnapshot":
        """Deep-copy *subject* into a new snapshot (the original keeps running)."""
        state = copy.deepcopy(subject)
        _rekey_in_flight(_find_simulator(state))
        return cls(state)

    def restore(self) -> Any:
        """Return a fresh, fully independent copy of the captured state."""
        restored = copy.deepcopy(self._state)
        _rekey_in_flight(_find_simulator(restored))
        self._restores += 1
        return restored

    def to_bytes(self) -> bytes:
        """Serialize the captured state for disk/wire transport.

        Pickle works here for the same reason ``deepcopy`` does: the live
        graph holds no closures (only bound methods, module-level functions
        and :class:`~repro.sim.events.Action` values, all of which pickle by
        reference or by state).  The persistent sweep cache
        (:mod:`repro.audit.store`) stores these bytes keyed by a
        content-addressed prefix fingerprint, which is what lets warm
        prefixes finally cross process and machine boundaries.
        """
        return pickle.dumps(self._state, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SimSnapshot":
        """Rebuild a snapshot from :meth:`to_bytes` output.

        Unpickling allocates fresh objects, so the identity-keyed channel
        ledgers are re-keyed exactly as after a deep copy; a restored
        continuation is byte-identical to a cold run (pinned by the
        test-suite).  Only feed this trusted bytes — pickle executes the
        constructors of whatever it decodes.
        """
        state = pickle.loads(blob)
        _rekey_in_flight(_find_simulator(state))
        return cls(state)

    @property
    def restores(self) -> int:
        """How many times this snapshot has been restored (fan-out width)."""
        return self._restores

    @property
    def now(self) -> float:
        """The simulated instant the snapshot was captured at."""
        return _find_simulator(self._state).now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimSnapshot(at={self.now:g}, of={type(self._state).__name__}, "
            f"restores={self._restores})"
        )


def snapshot(subject: Any) -> SimSnapshot:
    """Convenience alias for :meth:`SimSnapshot.capture`."""
    return SimSnapshot.capture(subject)
