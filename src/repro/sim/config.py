"""Cluster configuration: one frozen dataclass instead of parameter sprawl.

Historically every knob of the simulated stack (channel shape, step interval,
boot mode, link cleaning, gossip refresh, ...) was threaded as an individual
keyword argument through ``ClusterNode.__init__``, ``Cluster.__init__`` and
``build_cluster`` — three copies of the same nine parameters that drifted
independently.  :class:`ClusterConfig` collapses them into a single immutable
value that is resolved once (:meth:`ClusterConfig.resolve`) and then shared by
the cluster and every node, including nodes added later by churn workloads.

Named presets cover the three configurations the repository actually uses:

``fast_sim``
    Low-latency lossless channels — what the test-suite and the benchmark
    harness run on (short simulations, identical protocol behaviour).
``paper_faithful``
    The communication model of the paper's Section 2 taken literally: wider
    delay bounds, the snap-stabilizing link-cleaning handshake on every link,
    and un-throttled heartbeat tokens.
``coherent_start``
    ``fast_sim`` but booting with the full configuration pre-installed — the
    assumption classical reconfiguration schemes make, used as a baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Optional, Union

from repro.common.errors import SimulationError
from repro.common.types import ProcessId
from repro.core.prediction import PredictionPolicy
from repro.sim.network import ChannelConfig

AdmissionPolicy = Callable[[ProcessId], bool]

DEFAULT_CHANNEL_CAPACITY = 8


@dataclass(frozen=True)
class ClusterConfig:
    """Every tunable of a simulated cluster, as one immutable value.

    Attributes
    ----------
    upper_bound_n:
        The failure detector's ``N`` (upper bound on the number of
        processors).  ``None`` derives ``max(2n, n + 2)`` from the initial
        cluster size during :meth:`resolve`.
    channel:
        The :class:`~repro.sim.network.ChannelConfig` of every directed
        channel.  ``None`` builds one from ``channel_capacity``.
    channel_capacity:
        Convenience scalar for the common "default channel, custom capacity"
        case.  Passing *both* ``channel`` and a disagreeing
        ``channel_capacity`` raises — the capacity is never silently ignored.
    coherent_start:
        When True nodes boot with the full configuration already installed;
        when False (default) they boot into a brute-force reset and
        self-organize — the paper's headline ability.
    stack:
        The :class:`~repro.sim.stacks.StackProfile` (or its registry name)
        every node instantiates.  Defaults to ``"bare"`` — the
        reconfiguration scheme with no application services on top.
    """

    upper_bound_n: Optional[int] = None
    channel: Optional[ChannelConfig] = None
    channel_capacity: Optional[int] = None
    step_interval: float = 1.0
    coherent_start: bool = False
    prediction_policy: Optional[PredictionPolicy] = None
    admission_policy: Optional[AdmissionPolicy] = None
    require_link_cleaning: bool = False
    gossip_refresh_interval: Optional[int] = None
    heartbeat_resend_interval: int = 3
    stack: Any = "bare"  # str (registry name) or StackProfile
    #: Sim-time cadence at which :meth:`Cluster.run_until` re-evaluates its
    #: predicate.  ``None`` derives the minimum event spacing (the smaller of
    #: the step interval and the minimum link delay); ``0.0`` restores the
    #: seed behaviour of evaluating after every executed event.
    convergence_poll_interval: Optional[float] = None
    #: Cross-check every incremental ``is_converged`` answer against the full
    #: scan oracle (tests only; raises on divergence).
    convergence_oracle_checks: bool = False
    #: recSA gossip wire discipline: when True, steady-state re-broadcasts
    #: travel as (version, changed-entries) deltas and compact digest
    #: refreshes, falling back to full vectors on digest mismatch.  Off by
    #: default: in a discrete-event simulator the compact forms do not
    #: reduce the event count (one packet either way), so they buy no
    #: wall-clock — but a dropped-delta repair window (a few rounds of
    #: bounded staleness after a receiver-side wipe) perturbs the chaotic
    #: churn regime at n >= 48 enough to move first-convergence times by
    #: orders of magnitude in either direction.  Full vectors keep every
    #: trajectory byte-identical to the seed.  Enable for wire-level
    #: realism (the counters expose the full/delta/digest mix and the
    #: bytes-on-wire savings) or in dedicated tiers that pin their own
    #: baselines.
    gossip_deltas: bool = False
    #: Broadcast-burst RNG streams: ``"shared"`` (seed behaviour — one global
    #: stream consumed in send order) or ``"per_source"`` (one stream per
    #: sending processor, required by the sharded simulator where no global
    #: send order exists).
    broadcast_streams: str = "shared"
    #: (N, Theta) failure-detector suspicion slack.  ``None`` keeps the
    #: detector's default (16) — calibrated for n <= 32, where the
    #: heartbeat-count ramp is narrow.  The ramp's spread grows with n (a
    #: peer's count between its own heartbeats is proportional to the
    #: number of chattering peers), so at n >= 48 the default slack turns
    #: ordinary staggering into suspicion churn: trust flaps forever and
    #: the cluster-wide stability windows that define convergence become
    #: astronomically rare (n=48 first converges at t~1041; n=128 never).
    #: Setting slack ~ 2n restores stable full trust — an n=128 cold
    #: bootstrap converges at t~5 — at the cost of slower crash suspicion.
    #: Deliberately opt-in: auto-scaling it would change the seed's
    #: trajectories at every size.  The string ``"auto"`` opts into the
    #: n-aware rule: :meth:`resolve` replaces it with ``max(16, 2 * n)``
    #: (the detector default at small n, the PR 7 scale finding above it).
    #: ``None`` remains the default and keeps every seed trajectory
    #: byte-identical.
    fd_gap_slack: Optional[Union[int, str]] = None

    def poll_interval(self) -> float:
        """The effective :meth:`Cluster.run_until` predicate-poll cadence."""
        if self.convergence_poll_interval is not None:
            return self.convergence_poll_interval
        min_delay = self.channel.min_delay if self.channel is not None else 0.0
        if min_delay > 0.0:
            return min(self.step_interval, min_delay)
        return 0.1 * self.step_interval

    def resolve(self, n: int) -> "ClusterConfig":
        """Return a fully concrete copy for an initial cluster of *n* nodes."""
        if (
            self.channel is not None
            and self.channel_capacity is not None
            and self.channel.capacity != self.channel_capacity
        ):
            raise SimulationError(
                f"conflicting channel configuration: channel_capacity="
                f"{self.channel_capacity} disagrees with the explicit "
                f"ChannelConfig(capacity={self.channel.capacity}); pass one "
                f"or the other"
            )
        channel = self.channel or ChannelConfig(
            capacity=self.channel_capacity
            if self.channel_capacity is not None
            else DEFAULT_CHANNEL_CAPACITY
        )
        upper = self.upper_bound_n or max(2 * n, n + 2)
        gap_slack = self.fd_gap_slack
        if isinstance(gap_slack, str):
            if gap_slack != "auto":
                raise SimulationError(
                    f"unknown fd_gap_slack policy {gap_slack!r}; "
                    f"expected an int, None, or 'auto'"
                )
            gap_slack = max(16, 2 * n)
        return replace(
            self,
            channel=channel,
            channel_capacity=channel.capacity,
            upper_bound_n=upper,
            fd_gap_slack=gap_slack,
        )

    def with_overrides(self, **overrides: Any) -> "ClusterConfig":
        """A copy with the given fields replaced (``None`` values ignored).

        Overriding ``channel_capacity`` alone on a config that already
        carries a channel resizes that channel (preserving its loss/delay
        shape) — so ``fast_sim(channel_capacity=16)`` works.  Passing both
        ``channel`` and a disagreeing ``channel_capacity`` in the *same* call
        is the conflicting combination :meth:`resolve` rejects.
        """
        effective = {k: v for k, v in overrides.items() if v is not None}
        if not effective:
            return self
        if (
            "channel_capacity" in effective
            and "channel" not in effective
            and self.channel is not None
        ):
            effective["channel"] = replace(
                self.channel, capacity=effective["channel_capacity"]
            )
        elif "channel" in effective and "channel_capacity" not in effective:
            # A resolved config carries channel_capacity=channel.capacity;
            # keep the pair in sync so a later resolve() does not see a
            # conflict the caller never created.
            effective["channel_capacity"] = effective["channel"].capacity
        return replace(self, **effective)


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------
def fast_sim(**overrides: Any) -> ClusterConfig:
    """Low-latency lossless channels: the test/benchmark configuration."""
    return ClusterConfig(
        channel=ChannelConfig(
            capacity=DEFAULT_CHANNEL_CAPACITY,
            loss_probability=0.0,
            min_delay=0.2,
            max_delay=0.6,
        ),
    ).with_overrides(**overrides)


def paper_faithful(**overrides: Any) -> ClusterConfig:
    """The paper's communication model taken literally.

    Wide delay bounds (reordering), the snap-stabilizing cleaning handshake
    on every link before heartbeats count, and an un-throttled heartbeat.
    """
    return ClusterConfig(
        channel=ChannelConfig(capacity=DEFAULT_CHANNEL_CAPACITY),
        require_link_cleaning=True,
        heartbeat_resend_interval=1,
    ).with_overrides(**overrides)


def coherent_start(**overrides: Any) -> ClusterConfig:
    """``fast_sim`` booting with the configuration pre-installed."""
    return fast_sim(coherent_start=True).with_overrides(**overrides)


def degraded_net(**overrides: Any) -> ClusterConfig:
    """Lossy, jittery channels: the floor environment programs degrade from.

    5% loss and a 6x delay spread keep fair communication intact while
    making every retransmission matter — the baseline the environment-driven
    scenarios (leaky partitions, coordinator hunts) start from, so their
    adversaries compose with ambient unreliability instead of a pristine
    fabric.
    """
    return ClusterConfig(
        channel=ChannelConfig(
            capacity=DEFAULT_CHANNEL_CAPACITY,
            loss_probability=0.05,
            min_delay=0.2,
            max_delay=1.2,
        ),
    ).with_overrides(**overrides)


PRESETS: Dict[str, Callable[..., ClusterConfig]] = {
    "fast_sim": fast_sim,
    "paper_faithful": paper_faithful,
    "coherent_start": coherent_start,
    "degraded_net": degraded_net,
}


def preset(ref: Union[str, ClusterConfig], **overrides: Any) -> ClusterConfig:
    """Resolve a preset name (or pass through a config) with overrides."""
    if isinstance(ref, ClusterConfig):
        return ref.with_overrides(**overrides)
    try:
        factory = PRESETS[ref]
    except KeyError:
        raise SimulationError(
            f"unknown cluster preset {ref!r}; available: {sorted(PRESETS)}"
        ) from None
    return factory(**overrides)
