"""Sharded simulation: partition the cluster across workers, sync by windows.

A single :class:`~repro.sim.simulator.Simulator` executes every event of an
n-node system on one core.  At n=128 and beyond, the event rate grows ~n² (a
gossip burst per node per step) and the bootstrap becomes minutes of wall
clock on the single event loop.  This module splits the node set across
*shards* — each a full ``Simulator`` + :class:`~repro.sim.cluster.Cluster`
holding only its own processors — and runs them under **conservative
time-window synchronization**:

* The *lookahead* is the minimum link delay ``W``: any packet sent at time
  ``t`` arrives no earlier than ``t + W``.
* Every shard runs one window ``(T, T + W]`` to completion independently.
  A packet addressed to a remote processor is **split in two**: the source
  shard keeps the channel bookkeeping (capacity, loss, duplication, delay
  draws, counters — all the state the sender's own behaviour depends on) and
  executes the capacity-release half at the arrival instant, while a plain
  ``(arrival, source, destination, payload)`` record travels to the owning
  shard at the next barrier and delivers there.  Because every arrival lies
  strictly beyond the barrier that ships it, no shard ever receives an event
  in its past — the classic conservative-synchronization invariant.
* At each barrier the coordinator exchanges the accumulated cross-shard
  records and (optionally) polls global convergence by merging the shards'
  :class:`~repro.sim.cluster.ConvergenceLedger` counters.

Equivalence to the single-process run
-------------------------------------
Every random stream consumed on the hot path is *pure per channel or per
process*: ``make_rng(seed, "channel", src, dst)`` for point-to-point sends,
``make_rng(seed, "process", pid)`` for process steps, and — required for
sharding — ``broadcast_streams="per_source"`` so a burst's delay draws depend
only on the sender's own history, not on a global send order that does not
exist across shards.  Each directed channel lives on exactly one shard (the
source's), so its draw sequence is identical to the single-process run, and
therefore so are all deliveries, protocol decisions and statistics.  The one
systematic difference is event accounting: a cross-shard packet executes two
events (capacity-release + remote delivery) where the single loop executes
one, so :meth:`ShardedCluster.statistics` subtracts the executed remote
deliveries.  The pinned equivalence (``tests/test_sharded.py``) is exact for
runs to a fixed horizon against a single-process cluster built with
``broadcast_streams="per_source"``.

Modes
-----
``serial``
    All shards in this process, windows run round-robin.  Deterministic,
    debuggable, and the reference for the equivalence tests; also what
    :meth:`ShardedCluster.checkpoint` snapshots (via
    :class:`~repro.sim.snapshot.SimSnapshot`, one capture per shard).
``fork``
    One OS process per shard (``multiprocessing`` fork context): workers
    keep their shard resident and exchange only the per-window record lists
    and ledger summaries over pipes, so the per-barrier IPC cost is bytes,
    not state.  Requires a platform with ``fork()``.

Scope: the sharded driver covers the scale workloads (bootstrap, churnless
convergence, fixed-horizon soak).  Fault injection, Byzantine interceptors
and partition programs remain single-process features — they mutate state
out-of-band across the whole cluster, which has no meaning inside one shard.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.common.errors import SimulationError
from repro.common.types import BOTTOM, ProcessId, make_config
from repro.sim.cluster import Cluster
from repro.sim.config import ClusterConfig
from repro.sim.network import ChannelConfig, Packet
from repro.sim.simulator import Simulator

#: A packet crossing shards: ``(arrival_time, source, destination, payload)``.
CrossRecord = Tuple[float, ProcessId, ProcessId, Any]


class ShardSimulator(Simulator):
    """A :class:`Simulator` owning a subset of the processors.

    Deliveries to owned processors follow the normal path.  A delivery to a
    remote processor is split at *send* time: the arrival instant and payload
    go to :attr:`outbox` for the next barrier exchange, and a local
    capacity-release event fires at the arrival instant so the channel's
    in-flight accounting (and the network's ``delivered`` counter) evolve
    exactly as on the single event loop.
    """

    def __init__(
        self,
        seed: int,
        channel_config: Optional[ChannelConfig],
        owned: Iterable[ProcessId],
        broadcast_streams: str = "per_source",
    ) -> None:
        if broadcast_streams != "per_source":
            raise SimulationError(
                "sharded simulation requires broadcast_streams='per_source': "
                "a shared broadcast stream implies a global send order that "
                "does not exist across shards"
            )
        super().__init__(
            seed=seed,
            channel_config=channel_config,
            broadcast_streams=broadcast_streams,
        )
        self.owned: FrozenSet[ProcessId] = frozenset(owned)
        self.outbox: List[CrossRecord] = []
        self.cross_sent = 0
        self.cross_received = 0
        #: Executed remote-delivery halves; each has a matching executed
        #: capacity-release half on the source shard, so the pair counts two
        #: events where the single-process run counts one.
        self.cross_executed = 0

    # ------------------------------------------------------- delivery split
    def _schedule_delivery(self, channel: Any, packet: Packet, delay: float) -> None:
        if packet.destination in self.owned:
            Simulator._schedule_delivery(self, channel, packet, delay)
            return
        arrival = self._arrival(self.now, delay, channel.config.delay_quantum)
        self.outbox.append((arrival, packet.source, packet.destination, packet.payload))
        self.cross_sent += 1
        self.events.schedule(
            arrival, self._complete_remote, label="deliver", args=(channel, packet)
        )

    def _schedule_deliveries(self, batch: Iterable[Any]) -> None:
        owned = self.owned
        local: List[Any] = []
        for channel, packet, delay in batch:
            if packet.destination in owned:
                local.append((channel, packet, delay))
            else:
                self._schedule_delivery(channel, packet, delay)
        if local:
            Simulator._schedule_deliveries(self, local)

    def _complete_remote(self, channel: Any, packet: Packet) -> None:
        channel.complete_delivery(packet)

    def _deliver_remote(self, source: ProcessId, destination: ProcessId, payload: Any) -> None:
        self.cross_executed += 1
        process = self.processes.get(destination)
        if process is None or process.crashed or not process.started:
            return
        self.delivered_messages += 1
        process.deliver(source, payload)

    def inject(self, records: Iterable[CrossRecord]) -> None:
        """Register cross-shard records shipped to this shard at a barrier."""
        for arrival, source, destination, payload in records:
            if arrival < self.now:
                raise SimulationError(
                    f"cross-shard record arriving at {arrival} is in shard "
                    f"past (now={self.now}); a link is faster than the "
                    f"synchronization window"
                )
            self.cross_received += 1
            self.events.schedule(
                arrival,
                self._deliver_remote,
                label="deliver",
                args=(source, destination, payload),
            )


class _Shard:
    """One shard: a :class:`ShardSimulator` plus a cluster of its own nodes."""

    def __init__(
        self, n: int, seed: int, owned: Sequence[ProcessId], config: ClusterConfig
    ) -> None:
        self.simulator = ShardSimulator(
            seed=seed,
            channel_config=config.channel,
            owned=owned,
            broadcast_streams=config.broadcast_streams,
        )
        self.cluster = Cluster(simulator=self.simulator, config=config)
        pids = list(range(n))
        initial = make_config(pids) if config.coherent_start else BOTTOM
        for pid in owned:
            self.cluster.add_node(pid, initial_config=initial, peers=pids)

    @classmethod
    def from_cluster(cls, cluster: Cluster) -> "_Shard":
        """Wrap a restored shard cluster (checkpoint path) without rebuilding."""
        shard = cls.__new__(cls)
        shard.cluster = cluster
        shard.simulator = cluster.simulator  # type: ignore[assignment]
        return shard

    def run(self, target: float) -> None:
        self.simulator.run(until=target)

    def inject(self, records: Iterable[CrossRecord]) -> None:
        self.simulator.inject(records)

    def drain_outbox(self) -> List[CrossRecord]:
        out = self.simulator.outbox
        self.simulator.outbox = []
        return out

    def convergence_summary(self) -> Tuple[int, int, int, Tuple[Any, ...]]:
        return self.cluster.convergence_ledger.summary()

    def statistics_parts(self) -> Dict[str, Any]:
        sim = self.simulator
        cluster_stats = self.cluster.statistics()
        parts = {
            "executed_events": sim.executed_events,
            "cross_executed": sim.cross_executed,
            "delivered_messages": sim.delivered_messages,
            "processes": len(sim.processes),
            "active": len(sim.active_processes()),
            "net": sim.network.statistics(),
        }
        for key in _CLUSTER_SUM_KEYS:
            parts[key] = cluster_stats[key]
        return parts


#: Cluster-level counters that aggregate across shards by plain summation.
_CLUSTER_SUM_KEYS = (
    "resets",
    "installs",
    "recma_triggers",
    "participants",
    "recsa_broadcasts_sent",
    "recsa_broadcasts_skipped",
    "recma_broadcasts_sent",
    "recma_broadcasts_skipped",
)


def _shard_worker(conn: Any, n: int, seed: int, owned: Sequence[ProcessId], config: ClusterConfig) -> None:
    """Worker loop of one forked shard process (state stays resident here)."""
    shard = _Shard(n=n, seed=seed, owned=owned, config=config)
    try:
        while True:
            command = conn.recv()
            op = command[0]
            if op == "run":
                target, incoming = command[1], command[2]
                shard.inject(incoming)
                shard.run(target)
                conn.send((shard.drain_outbox(), shard.convergence_summary()))
            elif op == "summary":
                conn.send(shard.convergence_summary())
            elif op == "stats":
                conn.send(shard.statistics_parts())
            elif op == "crash":
                conn.send(shard.cluster.try_crash(command[1]))
            elif op == "stop":
                break
            else:  # pragma: no cover - protocol misuse guard
                raise SimulationError(f"unknown shard command {op!r}")
    except EOFError:  # pragma: no cover - parent died; exit quietly
        pass
    finally:
        conn.close()


class ShardedCluster:
    """Coordinator of a cluster partitioned across shard simulators.

    The public surface mirrors the scale-relevant subset of
    :class:`~repro.sim.cluster.Cluster`: :meth:`run`,
    :meth:`run_until_converged`, :meth:`is_converged`, :meth:`statistics`,
    :meth:`crash`.  Time only advances in multiples of the synchronization
    window (the minimum link delay), and convergence is polled at barriers —
    so a detected convergence instant may trail the single-process detection
    by at most one window.
    """

    def __init__(
        self,
        n: int,
        seed: int = 0,
        shards: int = 2,
        mode: str = "serial",
        config: Optional[ClusterConfig] = None,
        *,
        channel_config: Optional[ChannelConfig] = None,
        channel_capacity: Optional[int] = None,
        step_interval: Optional[float] = None,
        coherent_start: Optional[bool] = None,
        stack: Optional[str] = None,
    ) -> None:
        if n < 1:
            raise ValueError("a cluster needs at least one node")
        if mode not in ("serial", "fork"):
            raise SimulationError(f"mode must be 'serial' or 'fork', got {mode!r}")
        base = config if config is not None else ClusterConfig()
        base = base.with_overrides(
            channel=channel_config,
            channel_capacity=channel_capacity,
            step_interval=step_interval,
            coherent_start=coherent_start,
            stack=stack,
            broadcast_streams="per_source",
        )
        resolved = base.resolve(n)
        window = resolved.channel.min_delay if resolved.channel else 0.0
        if window <= 0.0:
            raise SimulationError(
                "sharded simulation requires a positive minimum link delay "
                "(the conservative lookahead window)"
            )
        self.n = n
        self.seed = seed
        self.config = resolved
        self.window = window
        self.mode = mode
        self.now = 0.0
        shard_count = max(1, min(shards, n))
        pids = list(range(n))
        # Contiguous, near-equal blocks; deterministic in (n, shards).
        size, extra = divmod(n, shard_count)
        self._assignment: List[List[ProcessId]] = []
        cursor = 0
        for index in range(shard_count):
            block = size + (1 if index < extra else 0)
            self._assignment.append(pids[cursor : cursor + block])
            cursor += block
        self._owner: Dict[ProcessId, int] = {
            pid: index for index, block in enumerate(self._assignment) for pid in block
        }
        self._pending: List[List[CrossRecord]] = [[] for _ in self._assignment]
        self._shards: List[_Shard] = []
        self._conns: List[Any] = []
        self._workers: List[Any] = []
        if mode == "serial":
            self._shards = [
                _Shard(n=n, seed=seed, owned=block, config=resolved)
                for block in self._assignment
            ]
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError as exc:  # pragma: no cover - non-POSIX platforms
                raise SimulationError(
                    "mode='fork' requires a platform with fork(); use 'serial'"
                ) from exc
            for block in self._assignment:
                parent_conn, child_conn = context.Pipe()
                worker = context.Process(
                    target=_shard_worker,
                    args=(child_conn, n, seed, block, resolved),
                    daemon=True,
                )
                worker.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._workers.append(worker)

    # ----------------------------------------------------------- lifecycle
    @property
    def shards(self) -> int:
        return len(self._assignment)

    def close(self) -> None:
        """Stop fork workers (no-op in serial mode); idempotent."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
                conn.close()
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for worker in self._workers:
            worker.join(timeout=10)
        self._conns = []
        self._workers = []

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------- windows
    def _window(self, target: float) -> List[Tuple[int, int, int, Tuple[Any, ...]]]:
        """Run every shard to *target*, exchange records, return summaries."""
        summaries: List[Tuple[int, int, int, Tuple[Any, ...]]] = []
        outboxes: List[List[CrossRecord]] = []
        if self.mode == "serial":
            for index, shard in enumerate(self._shards):
                shard.inject(self._pending[index])
                self._pending[index] = []
                shard.run(target)
                outboxes.append(shard.drain_outbox())
                summaries.append(shard.convergence_summary())
        else:
            for index, conn in enumerate(self._conns):
                conn.send(("run", target, self._pending[index]))
                self._pending[index] = []
            for conn in self._conns:
                outbox, summary = conn.recv()
                outboxes.append(outbox)
                summaries.append(summary)
        owner = self._owner
        pending = self._pending
        for outbox in outboxes:
            for record in outbox:
                index = owner.get(record[2])
                if index is None:
                    raise SimulationError(
                        f"cross-shard packet addressed to unknown pid {record[2]!r}"
                    )
                pending[index].append(record)
        self.now = target
        return summaries

    @staticmethod
    def _merge(summaries: Iterable[Tuple[int, int, int, Tuple[Any, ...]]]) -> bool:
        participants = bad = unstable = 0
        configs: set = set()
        for shard_participants, shard_bad, shard_unstable, shard_configs in summaries:
            participants += shard_participants
            bad += shard_bad
            unstable += shard_unstable
            configs.update(shard_configs)
        return participants > 0 and bad == 0 and unstable == 0 and len(configs) == 1

    # ------------------------------------------------------------- running
    def run(self, until: float) -> None:
        """Advance all shards to simulated time *until* (barrier-stepped)."""
        while self.now < until:
            self._window(min(self.now + self.window, until))

    def run_until_converged(self, timeout: float = 2_000.0) -> bool:
        """Run until the merged ledgers report convergence (barrier cadence).

        *timeout* is a budget of simulated time from the current instant,
        matching :meth:`Cluster.run_until_converged`.
        """
        if self.is_converged():
            return True
        deadline = self.now + timeout
        while self.now < deadline:
            summaries = self._window(min(self.now + self.window, deadline))
            if self._merge(summaries):
                return True
        return False

    def is_converged(self) -> bool:
        """Merged convergence predicate over every shard's ledger."""
        if self.mode == "serial":
            summaries = [shard.convergence_summary() for shard in self._shards]
        else:
            for conn in self._conns:
                conn.send(("summary",))
            summaries = [conn.recv() for conn in self._conns]
        return self._merge(summaries)

    def crash(self, pid: ProcessId) -> bool:
        """Stop-fail *pid* on its owning shard (valid between windows)."""
        index = self._owner[pid]
        if self.mode == "serial":
            return self._shards[index].cluster.try_crash(pid)
        conn = self._conns[index]
        conn.send(("crash", pid))
        return bool(conn.recv())

    # ---------------------------------------------------------- statistics
    def statistics(self) -> Dict[str, Any]:
        """Aggregate statistics, matching the single-process dictionary.

        For a fixed-horizon :meth:`run` this is equal — key for key, value
        for value — to ``Cluster.statistics()`` of a single-process run of
        the same seed and configuration (with per-source broadcast streams);
        the cross-shard double-count is subtracted from ``executed_events``.
        """
        if self.mode == "serial":
            parts = [shard.statistics_parts() for shard in self._shards]
        else:
            for conn in self._conns:
                conn.send(("stats",))
            parts = [conn.recv() for conn in self._conns]
        stats: Dict[str, Any] = {
            "time": self.now,
            "executed_events": sum(p["executed_events"] for p in parts)
            - sum(p["cross_executed"] for p in parts),
            "delivered_messages": sum(p["delivered_messages"] for p in parts),
            "processes": sum(p["processes"] for p in parts),
            "active": sum(p["active"] for p in parts),
        }
        for key in ("sent", "delivered", "dropped", "duplicated"):
            stats[f"net_{key}"] = sum(p["net"][key] for p in parts)
        for key in _CLUSTER_SUM_KEYS:
            stats[key] = sum(p[key] for p in parts)
        return stats

    # ---------------------------------------------------------- checkpoint
    def checkpoint(self) -> Dict[str, Any]:
        """Capture every shard between windows (serial mode).

        Reuses :class:`~repro.sim.snapshot.SimSnapshot` — one capture per
        shard cluster — so the deep-copy determinism guarantees carry over;
        :meth:`restore` yields an independent coordinator that continues
        byte-identically.
        """
        if self.mode != "serial":
            raise SimulationError("checkpoint requires mode='serial'")
        from repro.sim.snapshot import SimSnapshot

        return {
            "now": self.now,
            "pending": [list(records) for records in self._pending],
            "shards": [SimSnapshot.capture(shard.cluster) for shard in self._shards],
        }

    def restore(self, checkpoint: Dict[str, Any]) -> "ShardedCluster":
        """A fresh, independent coordinator resumed from *checkpoint*."""
        clone = ShardedCluster.__new__(ShardedCluster)
        clone.n = self.n
        clone.seed = self.seed
        clone.config = self.config
        clone.window = self.window
        clone.mode = "serial"
        clone.now = checkpoint["now"]
        clone._assignment = [list(block) for block in self._assignment]
        clone._owner = dict(self._owner)
        clone._pending = [list(records) for records in checkpoint["pending"]]
        clone._shards = [
            _Shard.from_cluster(snapshot.restore()) for snapshot in checkpoint["shards"]
        ]
        clone._conns = []
        clone._workers = []
        return clone


def build_sharded_cluster(
    n: int,
    seed: int = 0,
    shards: int = 2,
    mode: str = "serial",
    config: Optional[ClusterConfig] = None,
    **overrides: Any,
) -> ShardedCluster:
    """Convenience mirror of :func:`~repro.sim.cluster.build_cluster`."""
    return ShardedCluster(
        n=n, seed=seed, shards=shards, mode=mode, config=config, **overrides
    )
