"""Token-exchange data link with snap-stabilizing cleaning.

The paper (Section 2) builds all communication on an abstraction of *token
carrying messages*: processor ``pi`` retransmits packet ``pkt1`` to ``pj``
until it has collected more than the channel capacity acknowledgements, then
moves on to ``pkt2``.  The perpetual bouncing of the token between the two
endpoints implements a heartbeat: if the peer crashes the token stops coming
back.

Two anti-parallel data links run on every undirected pair — one where ``pi``
is the sender, one where ``pj`` is — and packets carry the identifier of the
link's sender so that stale packets from other incarnations are ignored.

When a processor first hears from a peer that is not in its failure detector
(a *new connection signal*), it runs a snap-stabilizing **cleaning** phase
before delivering anything: it repeatedly sends a ``CLEAN`` probe carrying a
fresh nonce until more than the round-trip capacity of matching
acknowledgements arrive, which guarantees every stale packet that predates
the cleaning has drained from the channel pair.

The implementation below is a faithful but compact rendition: one
:class:`LinkEndpoint` object per (local, remote) pair holds both the sender
and receiver roles of the two anti-parallel links.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple
from collections import deque

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import ProcessId

_log = get_logger("datalink")


class LinkState(Enum):
    """Lifecycle of a link endpoint."""

    CLEANING = "cleaning"
    ESTABLISHED = "established"


@wire_type
@dataclass(frozen=True)
class DataLinkMessage:
    """Wire format of every data-link packet.

    Attributes
    ----------
    kind:
        ``"data"``, ``"ack"``, ``"clean"`` or ``"clean-ack"``.
    link_sender:
        Identifier of the processor acting as *sender* of the data link this
        packet belongs to (the anti-parallel label of Section 2).
    seq:
        Alternating sequence number of the token exchange, or the cleaning
        nonce for ``clean`` / ``clean-ack`` packets.
    payload:
        Application payload carried by ``data`` packets (may be ``None`` for a
        bare token / heartbeat).
    """

    kind: str
    link_sender: ProcessId
    seq: int
    payload: Any = None


class TokenExchangeLink:
    """Sender role of one directed data link (local → remote).

    The sender keeps retransmitting the current token (with the head of the
    outgoing message queue piggy-backed on it) until it has received more
    than ``capacity`` acknowledgements carrying the current sequence number;
    it then advances the sequence number and moves to the next message.
    """

    def __init__(self, local: ProcessId, remote: ProcessId, capacity: int) -> None:
        self.local = local
        self.remote = remote
        self.capacity = capacity
        self.seq = 0
        self.ack_count = 0
        self.outbox: Deque[Any] = deque()
        self.current_payload: Any = None
        self.completed_round_trips = 0
        self._cached_message: Optional[DataLinkMessage] = None

    def enqueue(self, payload: Any) -> None:
        """Queue *payload* for reliable FIFO delivery to the remote peer."""
        self.outbox.append(payload)
        if self.current_payload is None:
            self._cached_message = None

    def current_message(self) -> DataLinkMessage:
        """The packet to (re)transmit on the next send opportunity.

        The message is immutable and identical across retransmissions of the
        same token, so it is built once and reused until the sequence number
        advances or the payload changes (retransmission is the hottest loop
        of the whole simulation — one message per peer per iteration).
        """
        if self.current_payload is None and self.outbox:
            self.current_payload = self.outbox.popleft()
            self._cached_message = None
        message = self._cached_message
        if message is None:
            message = DataLinkMessage(
                kind="data",
                link_sender=self.local,
                seq=self.seq,
                payload=self.current_payload,
            )
            self._cached_message = message
        return message

    def on_ack(self, seq: int) -> bool:
        """Process an acknowledgement; return True when a round trip completed.

        A round trip completes when more than ``capacity`` acknowledgements of
        the current sequence number have arrived: the token flips and the next
        queued message (if any) becomes current.
        """
        if seq != self.seq:
            return False
        self.ack_count += 1
        if self.ack_count <= self.capacity:
            return False
        # Token returned: advance.
        self.seq = (self.seq + 1) % (2 * self.capacity + 2)
        self.ack_count = 0
        self.current_payload = None
        self._cached_message = None
        self.completed_round_trips += 1
        return True

    def reset(self, preserve_outbox: bool = True) -> None:
        """Forget the protocol state (after a cleaning phase).

        Application payloads queued before the link was established are kept
        by default — cleaning flushes stale *packets*, not the messages the
        upper layer asked to deliver.
        """
        self.seq = 0
        self.ack_count = 0
        if self.current_payload is not None:
            self.outbox.appendleft(self.current_payload)
        self.current_payload = None
        self._cached_message = None
        if not preserve_outbox:
            self.outbox.clear()


class LinkEndpoint:
    """Both roles of the anti-parallel data links between ``local`` and ``remote``.

    The endpoint is driven by its owner:

    * :meth:`on_timer` returns the packets to transmit this step (the sender
      retransmission plus any pending cleaning probe);
    * :meth:`on_packet` consumes a received :class:`DataLinkMessage` and
      returns ``(packets_to_send, delivered_payloads, heartbeat)`` — the
      owner forwards delivered payloads to the upper layer and reports the
      heartbeat to the failure detector.
    """

    _nonce_counter = itertools.count(1)

    def __init__(
        self,
        local: ProcessId,
        remote: ProcessId,
        capacity: int,
        require_cleaning: bool = True,
    ) -> None:
        self.local = local
        self.remote = remote
        self.capacity = capacity
        self.sender = TokenExchangeLink(local, remote, capacity)
        self.state = LinkState.CLEANING if require_cleaning else LinkState.ESTABLISHED
        self.clean_nonce = next(self._nonce_counter) * 10_000 + local
        self.clean_ack_count = 0
        self.last_delivered_seq: Optional[int] = None
        self.heartbeats_observed = 0
        self.delivered_payload_count = 0
        # Reusable immutable messages for the two retransmission hot spots:
        # the cleaning probe (constant until establishment) and the ack for
        # the remote token (constant until the remote sequence advances).
        self._clean_probe: Optional[DataLinkMessage] = None
        self._ack_cache: Optional[DataLinkMessage] = None

    # --------------------------------------------------------------- sending
    def send(self, payload: Any) -> None:
        """Queue *payload* for reliable delivery once the link is established."""
        self.sender.enqueue(payload)

    def on_timer(self) -> List[DataLinkMessage]:
        """Packets to transmit in this step of the do-forever loop."""
        if self.state is LinkState.CLEANING:
            probe = self._clean_probe
            if probe is None or probe.seq != self.clean_nonce:
                probe = DataLinkMessage(
                    kind="clean", link_sender=self.local, seq=self.clean_nonce
                )
                self._clean_probe = probe
            return [probe]
        return [self.sender.current_message()]

    # -------------------------------------------------------------- receiving
    def on_packet(
        self, message: DataLinkMessage
    ) -> Tuple[List[DataLinkMessage], List[Any], bool]:
        """Handle a packet from the remote peer.

        Returns ``(replies, delivered_payloads, heartbeat)``.  Every packet
        genuinely coming from the live peer counts as a heartbeat (the token
        exchange is what carries liveness information).
        """
        replies: List[DataLinkMessage] = []
        delivered: List[Any] = []
        heartbeat = False

        if message.kind == "clean":
            # Always answer cleaning probes; they also (re)start our own
            # cleaning so both directions flush together.
            replies.append(
                DataLinkMessage(kind="clean-ack", link_sender=self.local, seq=message.seq)
            )
            heartbeat = True
            return replies, delivered, heartbeat

        if message.kind == "clean-ack":
            heartbeat = True
            if self.state is LinkState.CLEANING and message.seq == self.clean_nonce:
                self.clean_ack_count += 1
                # More than the round-trip capacity of matching acks implies
                # no stale pre-cleaning packet can still be in flight.
                if self.clean_ack_count > 2 * self.capacity:
                    self._establish()
            return replies, delivered, heartbeat

        if self.state is LinkState.CLEANING:
            # Data packets received during cleaning are acknowledged (so the
            # peer's token can advance) but not delivered upward.
            if message.kind == "data":
                replies.append(
                    DataLinkMessage(kind="ack", link_sender=self.local, seq=message.seq)
                )
            heartbeat = True
            return replies, delivered, heartbeat

        if message.kind == "data" and message.link_sender == self.remote:
            heartbeat = True
            ack = self._ack_cache
            if ack is None or ack.seq != message.seq:
                ack = DataLinkMessage(kind="ack", link_sender=self.local, seq=message.seq)
                self._ack_cache = ack
            replies.append(ack)
            if message.seq != self.last_delivered_seq:
                self.last_delivered_seq = message.seq
                if message.payload is not None:
                    delivered.append(message.payload)
                    self.delivered_payload_count += 1
        elif message.kind == "ack" and message.link_sender == self.remote:
            heartbeat = True
            self.sender.on_ack(message.seq)

        if heartbeat:
            self.heartbeats_observed += 1
        return replies, delivered, heartbeat

    # ------------------------------------------------------------- internals
    def _establish(self) -> None:
        self.state = LinkState.ESTABLISHED
        self.clean_ack_count = 0
        self.sender.reset()
        self.last_delivered_seq = None

    def is_established(self) -> bool:
        """True once the snap-stabilizing cleaning phase has completed."""
        return self.state is LinkState.ESTABLISHED

    def is_idle(self) -> bool:
        """True when the sender role carries no application payload.

        An idle established link only bounces the bare heartbeat token, whose
        retransmission the owner may throttle (the token exchange makes no
        progress guarantee the upper layers are waiting on while idle)."""
        return self.sender.current_payload is None and not self.sender.outbox
