"""Self-stabilizing data-link layer.

Implements the communication substrate the paper assumes (Section 2):

* a **token-exchange** stop-and-wait protocol per directed pair that keeps
  retransmitting the current packet until more than the channel-capacity
  acknowledgements arrive — the continuous token bounce doubles as the
  heartbeat used by the (N, Theta)-failure detector;
* a **snap-stabilizing link cleaning** handshake executed when two processors
  first hear from each other, flushing any stale packets left in the channel
  by a transient fault before higher layers see messages;
* a small **reliable FIFO messaging** facade on top of the token exchange for
  the layers that need request/response semantics (joining, counter reads and
  writes).
"""

from repro.datalink.token_exchange import (
    TokenExchangeLink,
    LinkEndpoint,
    DataLinkMessage,
    LinkState,
)
from repro.datalink.heartbeat import HeartbeatService

__all__ = [
    "TokenExchangeLink",
    "LinkEndpoint",
    "DataLinkMessage",
    "LinkState",
    "HeartbeatService",
]
