"""Self-stabilizing data-link layer.

Implements the communication substrate the paper assumes (Section 2):

* a **token-exchange** stop-and-wait protocol per directed pair that keeps
  retransmitting the current packet until more than the channel-capacity
  acknowledgements arrive — the continuous token bounce doubles as the
  heartbeat used by the (N, Theta)-failure detector;
* a **snap-stabilizing link cleaning** handshake executed when two processors
  first hear from each other, flushing any stale packets left in the channel
  by a transient fault before higher layers see messages;
* a small **reliable FIFO messaging** facade on top of the token exchange for
  the layers that need request/response semantics (joining, counter reads and
  writes);
* optional **Byzantine-tolerant reliable broadcast** variants
  (:mod:`repro.datalink.reliable_broadcast`): Bracha echo voting and Dolev
  path flooding, selectable per stack profile, for the active-adversary
  threat model the audit layer certifies against.
"""

from repro.datalink.token_exchange import (
    TokenExchangeLink,
    LinkEndpoint,
    DataLinkMessage,
    LinkState,
)
from repro.datalink.heartbeat import HeartbeatService
from repro.datalink.reliable_broadcast import (
    BrachaBroadcastService,
    DolevBroadcastService,
    NaiveBroadcastService,
    RBMessage,
    make_rb_service,
    validate_rb_message,
)

__all__ = [
    "TokenExchangeLink",
    "LinkEndpoint",
    "DataLinkMessage",
    "LinkState",
    "HeartbeatService",
    "BrachaBroadcastService",
    "DolevBroadcastService",
    "NaiveBroadcastService",
    "RBMessage",
    "make_rb_service",
    "validate_rb_message",
]
