"""Byzantine-tolerant reliable broadcast over the unreliable channels.

The transient-fault model the rest of :mod:`repro.datalink` implements
(token exchange + snap-stabilizing cleaning) assumes every processor runs
its program honestly after the fault.  A *Byzantine* processor does not —
it may forge, mutate, equivocate or selectively drop messages forever.  The
classical countermeasure (Bracha 1987; Dolev 1982) is an authenticated-
channel reliable-broadcast layer: as long as fewer than ``n/3`` processors
are traitors, every honest processor delivers the same payload for the same
``(origin, seq)`` message id (*agreement*), and anything delivered with an
honest origin is exactly what that origin broadcast (*validity*).

Three service variants share one interface (``broadcast`` / ``on_message``
/ ``on_timer`` / ``delivered``), selectable per
:class:`~repro.sim.stacks.StackProfile`:

``BrachaBroadcastService``
    The echo protocol for fully connected topologies: echo the first SEND
    per message id, send READY once ``⌈(n+f)/2⌉+1`` matching echoes (or
    ``f+1`` matching READYs) arrive, deliver at ``2f+1`` READYs.
``DolevBroadcastService``
    Path flooding for sparse topologies: forwarded copies carry the relay
    path; a payload is delivered once it arrived over ``f+1`` node-disjoint
    paths (the direct edge counts as the empty path).
``NaiveBroadcastService``
    First-writer-wins fan-out with **no** echo round — the plain-datalink
    baseline.  An equivocating origin trivially splits the honest nodes;
    the audit layer pins that violation as the motivating counterexample.

Point-to-point channels are the authentication primitive: the simulator
stamps every packet with its true source, so a SEND/FWD whose ``origin``
disagrees with the packet sender is a detectable forgery.  All inbound
traffic passes :func:`validate_rb_message` first — malformed Byzantine
packets (wrong types, out-of-range sequence numbers, oversized paths,
unhashable payloads) are **counted and quarantined, never raised**, so a
traitor cannot crash an honest node with garbage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.common.codec import wire_type
from repro.common.types import ProcessId

SendFunction = Callable[[ProcessId, Any], None]

#: Wire kinds: ``send``/``echo``/``ready`` belong to Bracha, ``fwd`` to
#: Dolev path flooding; the naive baseline only uses ``send``.
RB_KINDS = ("send", "echo", "ready", "fwd")

#: Bounds enforced by :func:`validate_rb_message` — anything outside is a
#: malformed (or adversarially inflated) packet and is quarantined.
MAX_RB_SEQ = 1 << 20
MAX_PATH_LEN = 64

#: Per-service cap on distinct message ids tracked concurrently; a traitor
#: spraying fresh forged ids cannot grow honest state without bound.
MAX_TRACKED_MESSAGES = 256


@wire_type
@dataclass(frozen=True)
class RBMessage:
    """Wire format of every reliable-broadcast packet.

    ``(origin, seq)`` is the message id; ``path`` is only used by the Dolev
    variant (identifiers of the intermediate relays the copy traversed, in
    order, excluding the origin and the current hop's sender).
    """

    kind: str
    origin: ProcessId
    seq: int
    payload: Any = None
    path: Tuple[ProcessId, ...] = ()

    @property
    def mid(self) -> Tuple[ProcessId, int]:
        return (self.origin, self.seq)


def validate_rb_message(message: Any) -> bool:
    """Schema/bounds validation for inbound RB packets (never raises).

    Checks structure only — authenticity (origin vs packet sender) and
    protocol context (which kinds a variant accepts) belong to the services.
    """
    if not isinstance(message, RBMessage):
        return False
    if message.kind not in RB_KINDS:
        return False
    if not isinstance(message.origin, int) or isinstance(message.origin, bool):
        return False
    if not isinstance(message.seq, int) or isinstance(message.seq, bool):
        return False
    if not 0 <= message.seq < MAX_RB_SEQ:
        return False
    if not isinstance(message.path, tuple) or len(message.path) > MAX_PATH_LEN:
        return False
    if any(not isinstance(p, int) or isinstance(p, bool) for p in message.path):
        return False
    try:  # payloads key dictionaries below; unhashable garbage is malformed
        hash(message.payload)
    except TypeError:
        return False
    return True


class ReliableBroadcastService:
    """Shared plumbing of the three broadcast variants.

    Subclasses implement ``_start_broadcast`` and ``_handle``; everything
    here is bookkeeping (delivery log, quarantine counters, bounded resend
    pacing) shared by all of them.
    """

    variant = "base"

    def __init__(
        self,
        pid: ProcessId,
        peers: Tuple[ProcessId, ...],
        send: SendFunction,
        resend_interval: int = 4,
        max_resends: int = 8,
    ) -> None:
        self.pid = pid
        self.peers: Tuple[ProcessId, ...] = tuple(
            sorted(p for p in set(peers) if p != pid)
        )
        #: ``n`` counts this node too; ``f`` is the classical ``< n/3`` bound.
        self.n = len(self.peers) + 1
        self.f = max((self.n - 1) // 3, 0)
        self._send = send
        self.next_seq = 0
        #: My own broadcasts: ``seq -> payload`` (what validity checks against).
        self.sent: Dict[int, Any] = {}
        #: Delivered payloads: ``(origin, seq) -> payload``.
        self.delivered: Dict[Tuple[ProcessId, int], Any] = {}
        self.delivery_order: List[Tuple[ProcessId, int, Any]] = []
        self.quarantined = 0
        self.duplicates = 0
        self.equivocations_observed = 0
        self.resend_interval = max(1, int(resend_interval))
        self.max_resends = max(0, int(max_resends))
        self._rounds = 0
        self._resends: Dict[Tuple[ProcessId, int], int] = {}

    # ----------------------------------------------------------------- API
    def broadcast(self, payload: Any) -> int:
        """Reliably broadcast *payload*; returns the sequence number used."""
        seq = self.next_seq
        self.next_seq += 1
        self.sent[seq] = payload
        self._start_broadcast(seq, payload)
        return seq

    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Node message hook: consume every :class:`RBMessage`.

        Malformed packets are quarantined (counted, ignored) — they must
        degrade gracefully, never crash an honest node.
        """
        if not isinstance(message, RBMessage):
            return False
        if not validate_rb_message(message):
            self.quarantined += 1
            return True
        self._handle(sender, message)
        return True

    def on_timer(self) -> None:
        """Periodic retransmission (bounded per message id).

        The channels may lose packets; fair communication plus a bounded
        number of retransmissions is enough for the delivery proofs, and the
        bound keeps a quiesced system quiet.
        """
        self._rounds += 1
        if self._rounds % self.resend_interval == 0:
            self._resend()

    # ----------------------------------------------------------- internals
    def _start_broadcast(self, seq: int, payload: Any) -> None:
        raise NotImplementedError

    def _handle(self, sender: ProcessId, message: RBMessage) -> None:
        raise NotImplementedError

    def _resend(self) -> None:
        """Default: retransmit my own undelivered broadcasts."""
        for seq, payload in self.sent.items():
            mid = (self.pid, seq)
            if mid in self.delivered:
                continue
            if self._budget(mid):
                self._rebroadcast(seq, payload)

    def _rebroadcast(self, seq: int, payload: Any) -> None:
        raise NotImplementedError

    def _budget(self, mid: Tuple[ProcessId, int]) -> bool:
        tries = self._resends.get(mid, 0)
        if tries >= self.max_resends:
            return False
        self._resends[mid] = tries + 1
        return True

    def _broadcast_raw(self, message: RBMessage) -> None:
        for peer in self.peers:
            self._send(peer, message)

    def _deliver(self, mid: Tuple[ProcessId, int], payload: Any) -> None:
        if mid in self.delivered:
            return
        self.delivered[mid] = payload
        self.delivery_order.append((mid[0], mid[1], payload))

    def _track(self, table: Dict[Tuple[ProcessId, int], Any], mid: Tuple[ProcessId, int]) -> bool:
        """Admit *mid* into a bounded tracking table (quarantine overflow)."""
        if mid in table:
            return True
        if len(table) >= MAX_TRACKED_MESSAGES:
            self.quarantined += 1
            return False
        return True

    # ---------------------------------------------------------- inspection
    def statistics(self) -> Dict[str, Any]:
        return {
            "variant": self.variant,
            "n": self.n,
            "f": self.f,
            "sent": len(self.sent),
            "delivered": len(self.delivered),
            "quarantined": self.quarantined,
            "duplicates": self.duplicates,
            "equivocations_observed": self.equivocations_observed,
        }


class BrachaBroadcastService(ReliableBroadcastService):
    """Bracha's echo protocol (fully connected topology).

    Thresholds for ``n`` processors tolerating ``f < n/3`` traitors:

    * echo the first SEND per message id (one echo per id — an equivocating
      origin gets at most one of its payload variants echoed per honest node);
    * send READY for a payload once ``⌈(n+f)/2⌉+1`` matching echoes arrive,
      or ``f+1`` matching READYs (amplification: honest READYs imply some
      honest node crossed the echo threshold);
    * deliver at ``2f+1`` matching READYs (at least ``f+1`` honest, which
      locks every other honest node onto the same payload).
    """

    variant = "bracha"

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: ``mid -> payload -> set of processors`` whose echo/ready we saw.
        self.echoes: Dict[Tuple[ProcessId, int], Dict[Any, Set[ProcessId]]] = {}
        self.readies: Dict[Tuple[ProcessId, int], Dict[Any, Set[ProcessId]]] = {}
        #: ``mid -> payload`` I echoed / sent READY for (at most one each).
        self.echoed: Dict[Tuple[ProcessId, int], Any] = {}
        self.readied: Dict[Tuple[ProcessId, int], Any] = {}

    @property
    def echo_threshold(self) -> int:
        return (self.n + self.f) // 2 + 1

    @property
    def deliver_threshold(self) -> int:
        return 2 * self.f + 1

    # ----------------------------------------------------------- protocol
    def _start_broadcast(self, seq: int, payload: Any) -> None:
        message = RBMessage("send", self.pid, seq, payload)
        self._broadcast_raw(message)
        # The origin participates in its own echo round (it is one of the n).
        self._on_send(self.pid, message)

    def _rebroadcast(self, seq: int, payload: Any) -> None:
        self._broadcast_raw(RBMessage("send", self.pid, seq, payload))

    def _handle(self, sender: ProcessId, message: RBMessage) -> None:
        if message.kind == "send":
            # Channels authenticate: a SEND must arrive on the origin's own
            # link, otherwise it is a forgery by a third party.
            if message.origin != sender:
                self.quarantined += 1
                return
            self._on_send(sender, message)
        elif message.kind == "echo":
            if self._record(self.echoes, message.mid, message.payload, sender):
                self._maybe_progress(message.mid, message.payload)
        elif message.kind == "ready":
            if self._record(self.readies, message.mid, message.payload, sender):
                self._maybe_progress(message.mid, message.payload)
        else:  # "fwd" has no meaning on a Bracha stack
            self.quarantined += 1

    def _on_send(self, sender: ProcessId, message: RBMessage) -> None:
        mid = message.mid
        if mid in self.echoed:
            if self.echoed[mid] != message.payload:
                self.equivocations_observed += 1
            else:
                self.duplicates += 1
            return
        if not self._track(self.echoed, mid):
            return
        self.echoed[mid] = message.payload
        self._broadcast_raw(RBMessage("echo", message.origin, message.seq, message.payload))
        if self._record(self.echoes, mid, message.payload, self.pid):
            self._maybe_progress(mid, message.payload)

    def _record(
        self,
        table: Dict[Tuple[ProcessId, int], Dict[Any, Set[ProcessId]]],
        mid: Tuple[ProcessId, int],
        payload: Any,
        sender: ProcessId,
    ) -> bool:
        if not self._track(table, mid):
            return False
        senders = table.setdefault(mid, {}).setdefault(payload, set())
        if sender in senders:
            self.duplicates += 1
            return False
        senders.add(sender)
        return True

    def _maybe_progress(self, mid: Tuple[ProcessId, int], payload: Any) -> None:
        echo_count = len(self.echoes.get(mid, {}).get(payload, ()))
        ready_count = len(self.readies.get(mid, {}).get(payload, ()))
        if mid not in self.readied and (
            echo_count >= self.echo_threshold or ready_count >= self.f + 1
        ):
            self.readied[mid] = payload
            self._broadcast_raw(RBMessage("ready", mid[0], mid[1], payload))
            if self._record(self.readies, mid, payload, self.pid):
                ready_count += 1
        if ready_count >= self.deliver_threshold and self.readied.get(mid) == payload:
            self._deliver(mid, payload)

    def _resend(self) -> None:
        super()._resend()
        # Re-emit my echo/ready for undelivered ids so loss cannot strand a
        # broadcast one vote short of a threshold forever.
        for mid, payload in list(self.echoed.items()):
            if mid in self.delivered or not self._budget(mid):
                continue
            self._broadcast_raw(RBMessage("echo", mid[0], mid[1], payload))
            if mid in self.readied:
                self._broadcast_raw(RBMessage("ready", mid[0], mid[1], self.readied[mid]))


class DolevBroadcastService(ReliableBroadcastService):
    """Dolev's path-flooding protocol (works on sparse topologies).

    Every copy carries the relay path it traversed; a receiver accepts the
    copy's effective path (``message.path`` plus the hop sender), relays it
    to everyone not already on that path, and delivers a payload once it
    arrived over ``f+1`` node-disjoint paths — with fewer than ``f+1``
    traitors at least one of those paths is fully honest, so the payload is
    authentic.  The direct edge from the origin is the empty path (disjoint
    with everything).  Stored paths per message id are bounded.
    """

    variant = "dolev"

    #: Cap on stored paths per (mid, payload); beyond this the extra path
    #: carries no new disjointness information worth its memory.
    MAX_PATHS = 32

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        #: ``mid -> payload -> list of frozensets`` (intermediate-relay sets).
        self.paths: Dict[Tuple[ProcessId, int], Dict[Any, List[frozenset]]] = {}
        #: Copies already relayed, to flood each distinct path once.
        self._relayed: Set[Tuple[ProcessId, int, Any, frozenset]] = set()

    def _start_broadcast(self, seq: int, payload: Any) -> None:
        # The origin trusts itself: deliver locally, flood the direct copies.
        self._deliver((self.pid, seq), payload)
        self._broadcast_raw(RBMessage("fwd", self.pid, seq, payload, path=()))

    def _rebroadcast(self, seq: int, payload: Any) -> None:
        self._broadcast_raw(RBMessage("fwd", self.pid, seq, payload, path=()))

    def _handle(self, sender: ProcessId, message: RBMessage) -> None:
        if message.kind != "fwd":
            self.quarantined += 1
            return
        path = message.path
        # Structural sanity of the claimed path: no duplicates, and neither
        # endpoint of this hop (nor the origin) may appear as an intermediate.
        if len(set(path)) != len(path) or self.pid in path or sender in path:
            self.quarantined += 1
            return
        if message.origin in path or message.origin == self.pid:
            self.quarantined += 1
            return
        # The effective path of this copy: the relays it traversed, which
        # includes the hop sender unless the copy came straight from the
        # origin.  A non-origin sender claiming the empty path is lying.
        if sender == message.origin:
            if path:
                self.quarantined += 1
                return
            effective: Tuple[ProcessId, ...] = ()
        else:
            effective = path + (sender,)
        mid = message.mid
        if not self._track(self.paths, mid):
            return
        variants = self.paths.setdefault(mid, {})
        stored = variants.setdefault(message.payload, [])
        as_set = frozenset(effective)
        if as_set in stored:
            self.duplicates += 1
        elif len(stored) < self.MAX_PATHS:
            stored.append(as_set)
            if len(variants) > 1:
                self.equivocations_observed += 1
            if self._disjoint_count(stored) >= self.f + 1:
                self._deliver(mid, message.payload)
        # Relay each distinct copy once, to peers not already on its path.
        relay_key = (mid[0], mid[1], message.payload, as_set)
        if relay_key in self._relayed:
            return
        self._relayed.add(relay_key)
        if len(effective) + 1 <= MAX_PATH_LEN:
            forwarded = replace(message, path=effective)
            for peer in self.peers:
                if peer not in as_set and peer != message.origin and peer != sender:
                    self._send(peer, forwarded)

    @staticmethod
    def _disjoint_count(paths: List[frozenset]) -> int:
        """Greedy lower bound on the number of pairwise-disjoint path sets."""
        picked: List[frozenset] = []
        for candidate in sorted(paths, key=len):
            if all(not (candidate & chosen) for chosen in picked):
                picked.append(candidate)
        return len(picked)


class NaiveBroadcastService(ReliableBroadcastService):
    """Plain fan-out without an echo round — the unprotected baseline.

    Keeps the origin-authenticity check (third-party forgeries are still
    quarantined; the channels make them detectable for free) but delivers
    the *first* payload seen per message id.  An equivocating origin sends
    different payloads to different peers directly, so honest nodes deliver
    different values for the same id: ``rb_agreement`` breaks, which is the
    pinned counterexample motivating the Bracha/Dolev variants.
    """

    variant = "naive"

    def _start_broadcast(self, seq: int, payload: Any) -> None:
        self._deliver((self.pid, seq), payload)
        self._broadcast_raw(RBMessage("send", self.pid, seq, payload))

    def _rebroadcast(self, seq: int, payload: Any) -> None:
        self._broadcast_raw(RBMessage("send", self.pid, seq, payload))

    def _handle(self, sender: ProcessId, message: RBMessage) -> None:
        if message.kind != "send":
            self.quarantined += 1
            return
        if message.origin != sender:
            self.quarantined += 1
            return
        mid = message.mid
        if mid in self.delivered:
            if self.delivered[mid] != message.payload:
                self.equivocations_observed += 1
            else:
                self.duplicates += 1
            return
        if not self._track(self.delivered, mid):
            return
        self._deliver(mid, message.payload)


#: Variant registry used by the ``rb_*`` stack profiles.
RB_VARIANTS = {
    "bracha": BrachaBroadcastService,
    "dolev": DolevBroadcastService,
    "naive": NaiveBroadcastService,
}


def make_rb_service(
    variant: str,
    pid: ProcessId,
    peers: Tuple[ProcessId, ...],
    send: SendFunction,
    **options: Any,
) -> ReliableBroadcastService:
    """Build the named reliable-broadcast variant."""
    try:
        service_cls = RB_VARIANTS[variant]
    except KeyError:
        raise KeyError(
            f"unknown reliable-broadcast variant {variant!r}; "
            f"available: {sorted(RB_VARIANTS)}"
        ) from None
    return service_cls(pid, peers, send, **options)
