"""Heartbeat service built on the token-exchange data links.

The service owns one :class:`~repro.datalink.token_exchange.LinkEndpoint` per
known peer.  On every do-forever-loop iteration it retransmits the current
token (and cleaning probes) on every link; on packet arrival it feeds the
packet to the owning endpoint and reports heartbeats to its listeners — the
(N, Theta)-failure detector registers itself as such a listener.

Payload messages sent through :meth:`send_reliable` travel on the token
exchange (reliable FIFO); the higher-volume gossip of the reconfiguration
algorithms uses the raw unreliable channel instead (fair communication is all
those algorithms need), which keeps the simulation fast.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.common.types import ProcessId
from repro.datalink.token_exchange import DataLinkMessage, LinkEndpoint

HeartbeatListener = Callable[[ProcessId], None]
PayloadHandler = Callable[[ProcessId, Any], None]
SendFunction = Callable[[ProcessId, Any], None]

#: Default retransmission period (in do-forever iterations) for *idle*
#: established links.  While a link carries no application payload the token
#: is a pure heartbeat, and the owner may let other traffic (protocol gossip
#: reported through :meth:`HeartbeatService.notify_traffic`) stand in for it;
#: ``1`` retransmits every iteration (the seed behaviour).
DEFAULT_IDLE_RESEND_INTERVAL = 1

#: Wire kinds a data-link packet may carry.
_VALID_KINDS = frozenset(("data", "ack", "clean", "clean-ack"))

#: Upper bound on plausible sequence/nonce values.  Token seqs alternate in a
#: tiny ring and cleaning nonces grow as ``counter * 10_000 + pid``, so any
#: honest value fits comfortably; a Byzantine out-of-range (or negative, or
#: non-integer) value is quarantined instead of ingested.
_MAX_LINK_SEQ = 1 << 31


class HeartbeatService:
    """Per-process manager of token-exchange links and heartbeat fan-out."""

    def __init__(
        self,
        pid: ProcessId,
        send: SendFunction,
        channel_capacity: int = 8,
        require_cleaning: bool = True,
        idle_resend_interval: int = DEFAULT_IDLE_RESEND_INTERVAL,
    ) -> None:
        self.pid = pid
        self._send = send
        self.channel_capacity = channel_capacity
        self.require_cleaning = require_cleaning
        self.idle_resend_interval = max(1, int(idle_resend_interval))
        self.links: Dict[ProcessId, LinkEndpoint] = {}
        #: Malformed / out-of-range data-link packets rejected before the
        #: endpoint saw them (Byzantine garbage degrades gracefully).
        self.quarantined = 0
        self._idle_rounds: Dict[ProcessId, int] = {}
        self._heartbeat_listeners: List[HeartbeatListener] = []
        self._payload_handlers: List[PayloadHandler] = []

    # --------------------------------------------------------------- wiring
    def add_heartbeat_listener(self, listener: HeartbeatListener) -> None:
        """Register a callback invoked with the peer id on every heartbeat."""
        self._heartbeat_listeners.append(listener)

    def add_payload_handler(self, handler: PayloadHandler) -> None:
        """Register a callback for payloads delivered reliably by a link."""
        self._payload_handlers.append(handler)

    def add_peer(self, peer: ProcessId) -> LinkEndpoint:
        """Ensure a link endpoint exists for *peer* and return it."""
        if peer == self.pid:
            raise ValueError("a process does not keep a link to itself")
        endpoint = self.links.get(peer)
        if endpoint is None:
            endpoint = LinkEndpoint(
                local=self.pid,
                remote=peer,
                capacity=self.channel_capacity,
                require_cleaning=self.require_cleaning,
            )
            self.links[peer] = endpoint
        return endpoint

    def peers(self) -> Iterable[ProcessId]:
        """Identifiers of every peer a link exists for."""
        return self.links.keys()

    # ------------------------------------------------------------ data plane
    def send_reliable(self, peer: ProcessId, payload: Any) -> None:
        """Queue *payload* for reliable FIFO delivery to *peer*."""
        self.add_peer(peer).send(payload)

    def on_timer(self) -> None:
        """Retransmit tokens / cleaning probes on every link (one step).

        Established links with no payload in flight are *idle*: their token
        is pure liveness signalling, so the retransmission is throttled to
        every ``idle_resend_interval``-th iteration.  Cleaning probes and
        links carrying payload always transmit — the snap-stabilizing
        handshake and the reliable-FIFO latency are never throttled.
        """
        interval = self.idle_resend_interval
        for peer, endpoint in self.links.items():
            if interval > 1 and endpoint.is_established() and endpoint.is_idle():
                rounds = self._idle_rounds.get(peer, interval)
                if rounds + 1 < interval:
                    self._idle_rounds[peer] = rounds + 1
                    continue
                self._idle_rounds[peer] = 0
            else:
                self._idle_rounds[peer] = 0
            for message in endpoint.on_timer():
                self._send(peer, message)

    def notify_traffic(self, sender: ProcessId) -> None:
        """Report liveness evidence carried by non-data-link traffic.

        Any packet received from *sender* proves the peer was recently alive
        (packets are never created spontaneously; stale in-flight packets are
        bounded by the channel capacity), so protocol gossip can stand in for
        throttled heartbeat tokens.  Fans the heartbeat out to the listeners
        exactly like a token arrival.
        """
        for listener in self._heartbeat_listeners:
            listener(sender)

    def on_packet(self, sender: ProcessId, message: DataLinkMessage) -> None:
        """Feed a received data-link packet to the owning endpoint.

        Structural bounds validation runs first: a packet with an unknown
        kind, a non-integer link sender, or a sequence/nonce outside the
        honest value range is counted and dropped before the endpoint (or
        the failure detector behind it) can ingest it — a Byzantine peer
        must not be able to poison link state with out-of-range values.
        """
        if not self._valid_packet(message):
            self.quarantined += 1
            return
        # A packet labelled with a link sender that is neither endpoint of
        # this pair is stale (Section 2: such packets are ignored).
        if message.link_sender not in (sender, self.pid):
            return
        endpoint = self.add_peer(sender)
        replies, delivered, heartbeat = endpoint.on_packet(message)
        for reply in replies:
            self._send(sender, reply)
        if heartbeat:
            for listener in self._heartbeat_listeners:
                listener(sender)
        for payload in delivered:
            for handler in self._payload_handlers:
                handler(sender, payload)

    @staticmethod
    def _valid_packet(message: DataLinkMessage) -> bool:
        """Schema/bounds check for inbound data-link packets (never raises)."""
        if message.kind not in _VALID_KINDS:
            return False
        if not isinstance(message.link_sender, int) or isinstance(message.link_sender, bool):
            return False
        if not isinstance(message.seq, int) or isinstance(message.seq, bool):
            return False
        return 0 <= message.seq < _MAX_LINK_SEQ

    # ------------------------------------------------------------ inspection
    def established_peers(self) -> List[ProcessId]:
        """Peers whose link has completed the snap-stabilizing cleaning."""
        return [peer for peer, link in self.links.items() if link.is_established()]

    def heartbeat_counts(self) -> Dict[ProcessId, int]:
        """Number of heartbeats observed per peer (diagnostics)."""
        return {peer: link.heartbeats_observed for peer, link in self.links.items()}
