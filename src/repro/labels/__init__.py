"""Bounded labeling scheme (Section 4.1 of the paper).

Labels are the bounded substitute for an unbounded epoch number: a processor
that knows a set of labels can always create a label greater than all of
them, and the system converges to a single globally-maximal label even after
transient faults corrupt the label storage.

* :mod:`repro.labels.label` — the epoch-label value type, the ``≺lb`` partial
  order and ``nextLabel()``;
* :mod:`repro.labels.store` — the bounded per-creator label-pair queues and
  the receipt action of Algorithm 4.2;
* :mod:`repro.labels.labeling` — the reconfiguration-aware wrapper
  (Algorithm 4.1) run by configuration members.
"""

from repro.labels.label import EpochLabel, LabelPair, label_less_than, max_label, next_label
from repro.labels.store import LabelStore
from repro.labels.labeling import LabelingService, LabelMessage

__all__ = [
    "EpochLabel",
    "LabelPair",
    "label_less_than",
    "max_label",
    "next_label",
    "LabelStore",
    "LabelingService",
    "LabelMessage",
]
