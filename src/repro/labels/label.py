"""Epoch labels: a bounded replacement for unbounded epoch counters.

The construction follows the bounded labeling scheme the paper inherits from
its reference [11] (and ultimately from practically-self-stabilizing bounded
counters): a label is a triple

    ``⟨lCreator, sting, antistings⟩``

where ``sting`` is an integer from a bounded domain and ``antistings`` is a
bounded set of integers from the same domain.  Labels are compared with the
partial order ``≺lb``:

* labels by different creators are ordered by creator identifier (the paper:
  "any two labels are compared first as to their creator identifier");
* labels by the same creator are ordered by the sting/antistings rule —
  ``a ≺ b`` iff ``a.sting ∈ b.antistings`` and ``b.sting ∉ a.antistings`` —
  and may be **incomparable**, which is precisely what lets a creator issue a
  label greater than every label it currently knows (``nextLabel``), even
  after transient faults fabricated arbitrary labels bearing its identifier.

The domain is sized so that ``nextLabel`` always succeeds as long as the
number of known labels does not exceed ``antisting_capacity``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence

from repro.common.codec import wire_type
from repro.common.types import ProcessId

#: Default number of antistings a label carries; must be at least the number
#: of labels that can simultaneously exist in the system for ``nextLabel`` to
#: dominate all of them.
DEFAULT_ANTISTING_CAPACITY = 64

#: Default sting domain size.  Must exceed the antisting capacity so a fresh
#: sting outside every known antisting set always exists.
DEFAULT_DOMAIN_SIZE = DEFAULT_ANTISTING_CAPACITY ** 2 + 1


@wire_type
@dataclass(frozen=True)
class EpochLabel:
    """A bounded epoch label ``⟨lCreator, sting, antistings⟩``."""

    creator: ProcessId
    sting: int
    antistings: FrozenSet[int]

    def __post_init__(self) -> None:
        if self.sting in self.antistings:
            # A label cannot cancel itself; such a value can only appear via
            # a transient fault and is treated as smaller than everything by
            # the ordering below (it is its own antisting).
            pass

    def sort_key(self) -> tuple:
        """Deterministic tie-break key (NOT the semantic ``≺lb`` order)."""
        return (self.creator, self.sting, tuple(sorted(self.antistings)))


@wire_type
@dataclass(frozen=True)
class LabelPair:
    """A label together with its (possible) canceling label ``⟨ml, cl⟩``.

    ``cl is None`` means the label is *legitimate* (not canceled); otherwise
    ``cl`` records a label that is not dominated by ``ml``, which is the
    evidence used to cancel ``ml``.
    """

    ml: EpochLabel
    cl: Optional[EpochLabel] = None

    @property
    def legit(self) -> bool:
        """True when the label has not been canceled."""
        return self.cl is None

    def cancel(self, evidence: EpochLabel) -> "LabelPair":
        """Return a canceled copy of this pair, keeping existing evidence."""
        if self.cl is not None:
            return self
        return LabelPair(ml=self.ml, cl=evidence)


def label_less_than(a: EpochLabel, b: EpochLabel) -> bool:
    """The ``≺lb`` partial order.

    Different creators: ordered by creator identifier.  Same creator: the
    sting/antistings rule; returns False for incomparable pairs (neither
    ``a ≺ b`` nor ``b ≺ a``).
    """
    if a == b:
        return False
    if a.creator != b.creator:
        return a.creator < b.creator
    return a.sting in b.antistings and b.sting not in a.antistings


def label_leq(a: EpochLabel, b: EpochLabel) -> bool:
    """``a = b`` or ``a ≺lb b``."""
    return a == b or label_less_than(a, b)


def labels_incomparable(a: EpochLabel, b: EpochLabel) -> bool:
    """True when neither label dominates the other under ``≺lb``."""
    return a != b and not label_less_than(a, b) and not label_less_than(b, a)


def max_label(labels: Iterable[EpochLabel]) -> Optional[EpochLabel]:
    """A maximal element of *labels* under ``≺lb`` (None for an empty input).

    With a partial order there may be several maximal elements; the one with
    the greatest deterministic sort key among them is returned so that every
    processor holding the same set picks the same label.
    """
    candidates: List[EpochLabel] = list(labels)
    if not candidates:
        return None
    maximal = [
        a
        for a in candidates
        if not any(label_less_than(a, b) for b in candidates if b != a)
    ]
    return max(maximal, key=lambda lbl: lbl.sort_key())


def next_label(
    creator: ProcessId,
    known: Sequence[EpochLabel],
    domain_size: int = DEFAULT_DOMAIN_SIZE,
    antisting_capacity: int = DEFAULT_ANTISTING_CAPACITY,
) -> EpochLabel:
    """``nextLabel()``: a label by *creator* greater than every label in *known*.

    The new label's antistings contain every known sting (so every known
    label of the same creator becomes smaller), and its sting is chosen
    outside every known antisting set (so no known label dominates it).

    Raises ``ValueError`` when the bounded domain cannot accommodate the
    request — which only happens if the caller exceeded the capacity the
    store enforces.
    """
    known = list(known)
    stings = {lbl.sting for lbl in known}
    blocked = set()
    for lbl in known:
        blocked |= set(lbl.antistings)
    blocked |= stings
    fresh_sting = None
    for candidate in range(domain_size):
        if candidate not in blocked:
            fresh_sting = candidate
            break
    if fresh_sting is None:
        raise ValueError(
            "label domain exhausted: increase domain_size or reduce the "
            "number of concurrently stored labels"
        )
    antistings = set(list(stings)[:antisting_capacity])
    return EpochLabel(creator=creator, sting=fresh_sting, antistings=frozenset(antistings))
