"""Bounded label-pair storage and the receipt action of Algorithm 4.2.

Every configuration member keeps

* ``max_pairs[j]`` — the label pair most recently reported by member ``j``
  (entry ``i`` is the member's own current maximal pair), and
* ``stored[c]`` — a bounded queue of label pairs whose label was created by
  member ``c``; the owner's own queue is larger because it must remember
  every label that could still cancel a label it creates.

The receipt action keeps these structures consistent: it files newly seen
labels, cancels labels for which a non-dominated rival by the same creator
exists, removes duplicates, flushes everything if the structure itself is
corrupted (stale information), and finally elects the owner's maximal label —
adopting the globally maximal legitimate label if one exists and otherwise
creating a fresh label with ``nextLabel``.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.common.types import ProcessId
from repro.labels.label import (
    DEFAULT_ANTISTING_CAPACITY,
    DEFAULT_DOMAIN_SIZE,
    EpochLabel,
    LabelPair,
    label_less_than,
    max_label,
    next_label,
)


class BoundedLabelQueue:
    """A bounded most-recently-used queue of :class:`LabelPair` objects.

    Accessing or re-adding a pair moves it to the front; inserting into a
    full queue evicts the least-recently-used pair — the bounded-memory
    behaviour the labeling algorithm relies on.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, capacity)
        self._pairs: "OrderedDict[EpochLabel, LabelPair]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self):
        return iter(list(self._pairs.values()))

    def pairs(self) -> List[LabelPair]:
        """Snapshot of the stored pairs (most recent first)."""
        return list(reversed(list(self._pairs.values())))

    def get(self, label: EpochLabel) -> Optional[LabelPair]:
        """Return the stored pair for *label*, marking it recently used."""
        pair = self._pairs.get(label)
        if pair is not None:
            self._pairs.move_to_end(label)
        return pair

    def add(self, pair: LabelPair) -> None:
        """Insert or update *pair*; a canceled copy always wins over a legit one."""
        existing = self._pairs.get(pair.ml)
        if existing is not None:
            if existing.cl is None and pair.cl is not None:
                self._pairs[pair.ml] = pair
            self._pairs.move_to_end(pair.ml)
            return
        self._pairs[pair.ml] = pair
        self._pairs.move_to_end(pair.ml)
        while len(self._pairs) > self.capacity:
            self._pairs.popitem(last=False)

    def replace(self, pair: LabelPair) -> None:
        """Overwrite the stored pair for ``pair.ml`` unconditionally."""
        self._pairs[pair.ml] = pair
        self._pairs.move_to_end(pair.ml)

    def remove(self, label: EpochLabel) -> None:
        """Drop the pair stored for *label* (if any)."""
        self._pairs.pop(label, None)

    def clear(self) -> None:
        """Drop every stored pair."""
        self._pairs.clear()


class LabelStore:
    """Per-member label bookkeeping plus the Algorithm 4.2 receipt action."""

    def __init__(
        self,
        owner: ProcessId,
        members: Iterable[ProcessId],
        in_transit_bound: int = 16,
        domain_size: int = DEFAULT_DOMAIN_SIZE,
        antisting_capacity: int = DEFAULT_ANTISTING_CAPACITY,
    ) -> None:
        self.owner = owner
        self.members: Tuple[ProcessId, ...] = tuple(sorted(set(members) | {owner}))
        self.in_transit_bound = in_transit_bound
        self.domain_size = domain_size
        self.antisting_capacity = antisting_capacity

        self.max_pairs: Dict[ProcessId, Optional[LabelPair]] = {m: None for m in self.members}
        self.stored: Dict[ProcessId, BoundedLabelQueue] = {}
        self._rebuild_queues()

        self.labels_created = 0
        self.queue_flushes = 0

    # ------------------------------------------------------------------
    # Structure management (rebuild / emptyAllQueues of Algorithm 4.1)
    # ------------------------------------------------------------------
    def _queue_capacity(self, creator: ProcessId) -> int:
        v = len(self.members)
        if creator == self.owner:
            return v * (v * v + self.in_transit_bound) + v
        return v + self.in_transit_bound

    def _rebuild_queues(self) -> None:
        self.stored = {
            member: BoundedLabelQueue(self._queue_capacity(member)) for member in self.members
        }

    def rebuild(self, members: Iterable[ProcessId]) -> None:
        """``rebuild()``: resize the structures for a new configuration."""
        self.members = tuple(sorted(set(members) | {self.owner}))
        old_max = self.max_pairs
        self.max_pairs = {m: old_max.get(m) for m in self.members}
        self._rebuild_queues()

    def empty_all_queues(self) -> None:
        """``emptyAllQueues()``: clear every per-creator queue."""
        for queue in self.stored.values():
            queue.clear()
        self.queue_flushes += 1

    def clean_non_member_labels(self) -> None:
        """``cleanMax()``: drop max entries whose label creator left the config."""
        for member, pair in list(self.max_pairs.items()):
            if pair is None:
                continue
            if pair.ml.creator not in self.members or (
                pair.cl is not None and pair.cl.creator not in self.members
            ):
                self.max_pairs[member] = None

    def clean_pair(self, pair: Optional[LabelPair]) -> Optional[LabelPair]:
        """``cleanLP()``: nullify a pair referencing a non-member creator."""
        if pair is None:
            return None
        if pair.ml.creator not in self.members:
            return None
        if pair.cl is not None and pair.cl.creator not in self.members:
            return None
        return pair

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    def own_max(self) -> Optional[LabelPair]:
        """The owner's current maximal label pair (may be None before boot)."""
        return self.max_pairs.get(self.owner)

    def local_max_label(self) -> Optional[EpochLabel]:
        """The owner's current maximal label when it is legitimate."""
        pair = self.own_max()
        if pair is not None and pair.legit:
            return pair.ml
        return None

    def legit_labels(self) -> List[EpochLabel]:
        """``legitLabels()``: the legitimate labels among the max entries."""
        return [pair.ml for pair in self.max_pairs.values() if pair is not None and pair.legit]

    def total_stored(self) -> int:
        """Total number of stored label pairs (bounded-memory check)."""
        return sum(len(queue) for queue in self.stored.values())

    # ------------------------------------------------------------------
    # The receipt action (Algorithm 4.2, labelReceiptAction)
    # ------------------------------------------------------------------
    def receipt_action(
        self,
        sent_max: Optional[LabelPair],
        last_sent: Optional[LabelPair],
        sender: ProcessId,
    ) -> Optional[LabelPair]:
        """Process one exchange and return the owner's (new) maximal pair.

        ``sent_max`` is the sender's own maximal pair; ``last_sent`` is the
        echo of the owner's maximal pair as last received by the sender.
        Either may be ``None`` (the ``⊥`` of the pseudo-code).
        """
        # Line 18: record the sender's maximum.
        if sender in self.max_pairs:
            self.max_pairs[sender] = self.clean_pair(sent_max)

        # Line 19: if the sender canceled the label we currently consider
        # maximal, adopt the cancellation.
        own = self.own_max()
        if (
            last_sent is not None
            and not last_sent.legit
            and own is not None
            and own.ml == last_sent.ml
        ):
            self.max_pairs[self.owner] = last_sent

        # Line 20: stale structural information flushes every queue.
        if self._stale_info():
            self.empty_all_queues()

        # Line 21: make sure every max entry is filed in its creator's queue.
        for pair in self.max_pairs.values():
            if pair is None:
                continue
            queue = self.stored.get(pair.ml.creator)
            if queue is None:
                continue
            if queue.get(pair.ml) is None:
                queue.add(pair)

        # Line 22: cancel stored labels dominated-by-nothing rivals exist for.
        for creator, queue in self.stored.items():
            pairs = queue.pairs()
            for pair in pairs:
                if not pair.legit:
                    continue
                for rival in pairs:
                    if rival.ml == pair.ml:
                        continue
                    if not label_less_than(rival.ml, pair.ml):
                        queue.replace(pair.cancel(rival.ml))
                        break

        # Lines 23-25: reconcile cancellation state between max[] and queues.
        for member, pair in list(self.max_pairs.items()):
            if pair is None:
                continue
            queue = self.stored.get(pair.ml.creator)
            if queue is None:
                continue
            stored = queue.get(pair.ml)
            if stored is None:
                continue
            if not pair.legit and stored.legit:
                queue.replace(pair)
            elif pair.legit and not stored.legit:
                self.max_pairs[member] = stored

        # Lines 26-27: elect the owner's maximal label.
        legit = self.legit_labels()
        if legit:
            chosen = max_label(legit)
            assert chosen is not None
            self.max_pairs[self.owner] = LabelPair(ml=chosen, cl=None)
        else:
            self._use_own_label()
        return self.own_max()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _stale_info(self) -> bool:
        """``staleInfo()``: a pair filed under the wrong creator's queue."""
        for creator, queue in self.stored.items():
            for pair in queue:
                if pair.ml.creator != creator:
                    return True
        return False

    def _use_own_label(self) -> None:
        """``useOwnLabel()``: reuse a legit own label or create a fresh one."""
        own_queue = self.stored.get(self.owner)
        if own_queue is None:
            own_queue = BoundedLabelQueue(self._queue_capacity(self.owner))
            self.stored[self.owner] = own_queue
        for pair in own_queue:
            if pair.legit:
                self.max_pairs[self.owner] = pair
                return
        known = [pair.ml for pair in own_queue]
        # Labels known anywhere in the store also constrain the new label so
        # that it cannot be immediately canceled by an already-present rival.
        for queue in self.stored.values():
            known.extend(pair.ml for pair in queue if pair.ml.creator == self.owner)
        for pair in self.max_pairs.values():
            if pair is not None and pair.ml.creator == self.owner:
                known.append(pair.ml)
        fresh = next_label(
            creator=self.owner,
            known=known,
            domain_size=self.domain_size,
            antisting_capacity=self.antisting_capacity,
        )
        fresh_pair = LabelPair(ml=fresh, cl=None)
        own_queue.add(fresh_pair)
        self.max_pairs[self.owner] = fresh_pair
        self.labels_created += 1
