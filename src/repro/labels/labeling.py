"""The reconfiguration-aware labeling service — Algorithm 4.1 of the paper.

The service is run by **configuration members only**.  Each member
periodically exchanges its maximal label pair with every other member; the
receipt action (Algorithm 4.2, :class:`repro.labels.store.LabelStore`) keeps
the bounded structures consistent and elects a local maximal label.  The
correctness argument of the paper then guarantees that members converge to a
single, globally maximal label.

Interaction with the reconfiguration scheme:

* while ``noReco()`` reports a reconfiguration in progress, no labels are
  sent, received or created;
* after a reconfiguration completes (``confChange()``), the label structures
  are rebuilt for the new member set, all queues are emptied, labels created
  by departed members are dropped, and the member re-elects a maximal label.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.common.codec import wire_type
from repro.common.logging_utils import get_logger
from repro.common.types import Configuration, ProcessId
from repro.core.scheme import ReconfigurationScheme
from repro.labels.label import EpochLabel, LabelPair
from repro.labels.store import LabelStore

_log = get_logger("labels")

SendFn = Callable[[ProcessId, Any], None]


@wire_type
@dataclass(frozen=True)
class LabelMessage:
    """The ``⟨max[i], max[k]⟩`` exchange of Algorithm 4.1 (line 17)."""

    sender: ProcessId
    sent_max: Optional[LabelPair]
    last_sent: Optional[LabelPair]


class LabelingService:
    """Per-processor labeling service layered on the reconfiguration scheme."""

    def __init__(
        self,
        pid: ProcessId,
        scheme: ReconfigurationScheme,
        send: SendFn,
        in_transit_bound: int = 16,
    ) -> None:
        self.pid = pid
        self.scheme = scheme
        self.send = send
        self.in_transit_bound = in_transit_bound
        self.store: Optional[LabelStore] = None
        self._store_members: Optional[Tuple[ProcessId, ...]] = None
        self.rebuild_count = 0

    # ------------------------------------------------------------------
    # Config tracking
    # ------------------------------------------------------------------
    def _current_members(self) -> Optional[Configuration]:
        config = self.scheme.configuration()
        if config is None or self.pid not in config:
            return None
        return config

    def conf_changed(self, members: Configuration) -> bool:
        """``confChange()``: the label structures lag behind the configuration."""
        return self._store_members != tuple(sorted(members))

    def _rebuild_for(self, members: Configuration) -> None:
        """Lines 9-14: rebuild structures after a completed reconfiguration."""
        if self.store is None:
            self.store = LabelStore(
                owner=self.pid,
                members=members,
                in_transit_bound=self.in_transit_bound,
            )
        else:
            self.store.rebuild(members)
            self.store.empty_all_queues()
        self.store.clean_non_member_labels()
        self.store.receipt_action(None, self.store.own_max(), self.pid)
        self._store_members = tuple(sorted(members))
        self.rebuild_count += 1

    # ------------------------------------------------------------------
    # Public queries
    # ------------------------------------------------------------------
    def max_label(self) -> Optional[EpochLabel]:
        """The member's current (legitimate) maximal label, if any."""
        if self.store is None:
            return None
        return self.store.local_max_label()

    def labels_created(self) -> int:
        """How many fresh labels this member has created (experiment E6)."""
        return 0 if self.store is None else self.store.labels_created

    # ------------------------------------------------------------------
    # Node hooks
    # ------------------------------------------------------------------
    def on_timer(self) -> None:
        """One iteration: rebuild after reconfiguration or gossip labels."""
        if not self.scheme.no_reco():
            return
        members = self._current_members()
        if members is None:
            return
        if self.conf_changed(members):
            self._rebuild_for(members)
            return
        assert self.store is not None
        own = self.store.clean_pair(self.store.own_max())
        for member in members:
            if member == self.pid:
                continue
            last_sent = self.store.clean_pair(self.store.max_pairs.get(member))
            self.send(member, LabelMessage(sender=self.pid, sent_max=own, last_sent=last_sent))

    def on_message(self, sender: ProcessId, message: Any) -> bool:
        """Handle a label exchange; returns True when the message was ours."""
        if not isinstance(message, LabelMessage):
            return False
        if not self.scheme.no_reco():
            return True
        members = self._current_members()
        if members is None or self.conf_changed(members):
            return True
        if sender not in members:
            return True
        assert self.store is not None
        self.store.clean_non_member_labels()
        self.store.receipt_action(
            sent_max=self.store.clean_pair(message.sent_max),
            last_sent=self.store.clean_pair(message.last_sent),
            sender=sender,
        )
        return True
