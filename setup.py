"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments whose setuptools predates PEP 660 native editable-wheel support
(the offline evaluation image ships setuptools without the ``wheel``
package).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Self-stabilizing reconfiguration for dynamic distributed systems "
        "(reproduction of Dolev et al., MIDDLEWARE 2016)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
