"""E4 (Lemma 3.20): a majority collapse triggers a recovery reconfiguration.

Crashes a majority of the configuration members and measures the time until
recMA triggers and a new configuration over the survivors is installed.
"""

from __future__ import annotations

import pytest

from conftest import bench_cluster, record


def _majority_collapse(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    old_config = cluster.agreed_configuration()
    victims = sorted(old_config)[: len(old_config) // 2 + 1]
    start = cluster.simulator.now
    for pid in victims:
        cluster.crash(pid)
    recovered = cluster.run_until(
        lambda: cluster.is_converged()
        and cluster.agreed_configuration() is not None
        and cluster.agreed_configuration() != old_config,
        timeout=10_000,
    )
    new_config = cluster.agreed_configuration()
    return {
        "n": n,
        "crashed": len(victims),
        "recovered": recovered,
        "recovery_time": cluster.simulator.now - start,
        "new_config_size": len(new_config or []),
        "survivors_only": bool(new_config) and not (set(victims) & set(new_config)),
        "majority_triggers": sum(
            node.recma.majority_triggers for node in cluster.nodes.values()
        ),
    }


@pytest.mark.parametrize("n", [5, 7])
def test_majority_collapse_recovery(benchmark, n):
    result = benchmark.pedantic(_majority_collapse, args=(n, 37), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["recovered"] and result["survivors_only"]
