"""E5 (Theorem 3.26): joining latency, with and without admission.

Measures how long a burst of joiners takes to become participants and checks
that joiners denied by the application's ``passQuery()`` never enter.
"""

from __future__ import annotations

import pytest

from conftest import bench_cluster, record


def _join_burst(n: int, joiners: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    start = cluster.simulator.now
    new_nodes = [cluster.add_joiner(1000 + i) for i in range(joiners)]
    joined = cluster.run_until(
        lambda: all(node.scheme.is_participant() for node in new_nodes),
        timeout=12_000,
    )
    return {
        "n": n,
        "joiners": joiners,
        "all_joined": joined,
        "join_time": cluster.simulator.now - start,
        "configuration_unchanged": cluster.agreed_configuration() is not None
        and all(1000 + i not in cluster.agreed_configuration() for i in range(joiners)),
    }


def _denied_joiner(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, admission_policy=lambda joiner: False)
    assert cluster.run_until_converged(timeout=4_000)
    joiner = cluster.add_joiner(999)
    cluster.run(until=cluster.simulator.now + 300)
    return {
        "n": n,
        "denied_joiner_stays_out": not joiner.scheme.is_participant(),
        "requests_sent": joiner.joining.join_requests_sent,
    }


@pytest.mark.parametrize("n,joiners", [(4, 1), (4, 3)])
def test_join_burst_latency(benchmark, n, joiners):
    result = benchmark.pedantic(_join_burst, args=(n, joiners, 41), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["all_joined"] and result["configuration_unchanged"]


def test_denied_joiner_never_participates(benchmark):
    result = benchmark.pedantic(_denied_joiner, args=(4, 43), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["denied_joiner_stays_out"]
