"""E12: MWMR shared-memory emulation — write propagation and consistency.

Measures write-propagation latency through the replicated register and checks
that every replica observes the same totally ordered write history.
"""

from __future__ import annotations

import pytest

from repro.counters.service import CounterService
from repro.vs.shared_memory import SharedRegister
from repro.vs.smr import RegisterStateMachine
from repro.vs.virtual_synchrony import VirtualSynchronyService, VSStatus

from conftest import bench_cluster, record


def _register_workload(n: int, writes: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    registers = {}
    services = {}
    for pid, node in cluster.nodes.items():
        counters = node.register_service(CounterService(pid, node.scheme, node._send_raw))
        vs = VirtualSynchronyService(
            pid, node.scheme, counters, node._send_raw, state_machine=RegisterStateMachine()
        )
        node.register_service(vs)
        services[pid] = vs
        registers[pid] = SharedRegister(pid, vs)
    assert cluster.run_until_converged(timeout=4_000)
    assert cluster.run_until(
        lambda: any(
            vs.view is not None and vs.status is VSStatus.MULTICAST and vs.is_coordinator()
            for vs in services.values()
        ),
        timeout=8_000,
    )
    start = cluster.simulator.now
    for index in range(writes):
        registers[index % n].write(f"value-{index}")
    completed = cluster.run_until(
        lambda: all(len(reg.history()) >= writes for reg in registers.values()),
        timeout=cluster.simulator.now + 10_000,
    )
    histories = {tuple(reg.history()) for reg in registers.values()}
    return {
        "n": n,
        "writes": writes,
        "all_delivered": completed,
        "write_propagation_time": cluster.simulator.now - start,
        "identical_histories": len(histories) == 1,
        "final_value_agreed": len({reg.read() for reg in registers.values()}) == 1,
    }


@pytest.mark.parametrize("writes", [4, 10])
def test_shared_register_consistency(benchmark, writes):
    result = benchmark.pedantic(_register_workload, args=(3, writes, 73), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["identical_histories"] and result["final_value_agreed"]
