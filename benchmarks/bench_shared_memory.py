"""E12: MWMR shared-memory emulation — write propagation and consistency.

Measures write-propagation latency through the replicated register and checks
that every replica observes the same totally ordered write history.
"""

from __future__ import annotations

import pytest

from repro.analysis.probes import view_is_installed

from conftest import bench_cluster, record


def _register_workload(n: int, writes: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, stack="shared_register")
    registers = cluster.services("register")
    assert cluster.run_until_converged(timeout=4_000)
    assert cluster.run_until(lambda: view_is_installed(cluster), timeout=8_000)
    start = cluster.simulator.now
    for index in range(writes):
        registers[index % n].write(f"value-{index}")
    completed = cluster.run_until(
        lambda: all(len(reg.history()) >= writes for reg in registers.values()),
        timeout=cluster.simulator.now + 10_000,
    )
    histories = {tuple(reg.history()) for reg in registers.values()}
    return {
        "n": n,
        "writes": writes,
        "all_delivered": completed,
        "write_propagation_time": cluster.simulator.now - start,
        "identical_histories": len(histories) == 1,
        "final_value_agreed": len({reg.read() for reg in registers.values()}) == 1,
    }


@pytest.mark.parametrize("writes", [4, 10])
def test_shared_register_consistency(benchmark, writes):
    result = benchmark.pedantic(_register_workload, args=(3, writes, 73), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["identical_histories"] and result["final_value_agreed"]
