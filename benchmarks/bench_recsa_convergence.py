"""E1 (Theorem 3.15, Convergence): recSA convergence from arbitrary states.

Measures the simulated time until every alive participant holds the same
configuration and reports stability, both from a cold (all-reset) start and
from a scrambled (transient-fault) state, for increasing system sizes.
"""

from __future__ import annotations

import pytest

from repro.workloads.corruption import scramble_cluster

from conftest import bench_cluster, record


def _converge_from_scratch(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    converged = cluster.run_until_converged(timeout=4_000)
    return {
        "n": n,
        "converged": converged,
        "time_to_converge": cluster.simulator.now,
        "resets": sum(node.recsa.reset_count for node in cluster.nodes.values()),
        "events": cluster.simulator.executed_events,
    }


def _converge_from_scramble(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    start = cluster.simulator.now
    scramble_cluster(cluster, seed=seed + 1)
    converged = cluster.run_until_converged(timeout=20_000)
    return {
        "n": n,
        "converged": converged,
        "recovery_time": cluster.simulator.now - start,
        "resets": sum(node.recsa.reset_count for node in cluster.nodes.values()),
    }


@pytest.mark.parametrize("n", [4, 8, 12])
def test_convergence_from_cold_start(benchmark, n):
    result = benchmark.pedantic(_converge_from_scratch, args=(n, 11), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]


@pytest.mark.parametrize("n", [4, 8])
def test_convergence_after_transient_faults(benchmark, n):
    result = benchmark.pedantic(_converge_from_scramble, args=(n, 17), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]
