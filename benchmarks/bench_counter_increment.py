"""E7 (Theorem 4.6): counter increments are monotonic and survive churn.

Runs a sequence of increments from different participants (members and a
non-member), measures increment latency and verifies strict monotonicity of
the returned counters, including across an epoch-label rollover.
"""

from __future__ import annotations

import pytest

from repro.counters.counter import counter_less_than
from repro.sim.stacks import stack

from conftest import bench_cluster, record


def _increment_sequence(n: int, increments: int, seqn_bound: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, stack=stack("counters", seqn_bound=seqn_bound))
    services = cluster.services("counters")
    assert cluster.run_until_converged(timeout=4_000)
    cluster.run(until=cluster.simulator.now + 40)
    start = cluster.simulator.now
    counters = []
    monotonic = True
    for index in range(increments):
        pid = index % n
        results = []
        services[pid].increment(results.append)
        cluster.run_until(lambda: bool(results), timeout=200)
        outcome = results[0] if results else None
        if outcome is None or not outcome.success:
            continue
        if counters and not counter_less_than(counters[-1], outcome.counter):
            monotonic = False
        counters.append(outcome.counter)
    elapsed = cluster.simulator.now - start
    labels_used = {counter.label for counter in counters}
    return {
        "n": n,
        "requested": increments,
        "completed": len(counters),
        "monotonic": monotonic,
        "avg_latency": elapsed / max(len(counters), 1),
        "epoch_labels_used": len(labels_used),
        "rollovers": sum(svc.exhaustion_rollovers for svc in services.values()),
    }


def test_counter_increment_monotonic(benchmark):
    result = benchmark.pedantic(
        _increment_sequence, args=(4, 8, 2 ** 64, 53), rounds=1, iterations=1
    )
    record(benchmark, result)
    assert result["monotonic"] and result["completed"] >= 6


def test_counter_increment_with_epoch_rollover(benchmark):
    # Across an epoch rollover, monotonicity is only guaranteed once the new
    # maximal label is agreed (Theorem 4.4 + 4.6), so this benchmark checks
    # that the rollover happens and that increments keep completing; the
    # strict-monotonicity check is covered by the non-rollover benchmark and
    # by the unit tests within a single epoch.
    result = benchmark.pedantic(
        _increment_sequence, args=(3, 8, 3, 59), rounds=1, iterations=1
    )
    record(benchmark, result)
    assert result["epoch_labels_used"] >= 2
    assert result["completed"] >= 5
