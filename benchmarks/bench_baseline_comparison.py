"""E9: self-stabilizing scheme vs the coherent-start baseline.

Runs the same transient-fault campaign against the paper's scheme and against
the non-self-stabilizing coherent-start baseline.  The scheme re-converges;
the baseline stays split forever — the contrast the introduction draws with
prior reconfiguration services.
"""

from __future__ import annotations

import pytest

from repro.baselines.coherent_start import CoherentStartNode
from repro.common.types import make_config
from repro.sim.simulator import Simulator
from repro.workloads.corruption import scramble_cluster

from conftest import bench_cluster, record


def _scheme_under_faults(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    scramble_cluster(cluster, seed=seed + 1)
    recovered = cluster.run_until_converged(timeout=10_000)
    return {
        "system": "self-stabilizing",
        "n": n,
        "recovered": recovered,
        "agreement": cluster.agreed_configuration() is not None,
    }


def _baseline_under_faults(n: int, seed: int) -> dict:
    sim = Simulator(seed=seed)
    nodes = {}
    for pid in range(n):
        node = CoherentStartNode(pid, peers=range(n), initial_config=range(n))
        sim.add_process(node)
        nodes[pid] = node
    sim.run(until=30.0)
    # The same class of transient fault: conflicting configurations under the
    # same sequence number.
    nodes[0].config = make_config(range(n // 2))
    nodes[0].sequence = 5
    nodes[1].config = make_config(range(n // 2, n))
    nodes[1].sequence = 5
    sim.run(until=1_000.0)
    configs = {node.config for node in nodes.values()}
    return {
        "system": "coherent-start baseline",
        "n": n,
        "recovered": len(configs) == 1,
        "distinct_configs_after_fault": len(configs),
    }


def test_scheme_recovers_from_transient_faults(benchmark):
    result = benchmark.pedantic(_scheme_under_faults, args=(5, 79), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["recovered"]


def test_baseline_never_recovers(benchmark):
    result = benchmark.pedantic(_baseline_under_faults, args=(6, 83), rounds=1, iterations=1)
    record(benchmark, result)
    assert not result["recovered"]
