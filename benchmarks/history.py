"""Collate committed ``BENCH_pr*.json`` files into one perf trajectory.

Every PR that moved performance committed a benchmark artifact, but they
accumulated as isolated snapshots — answering "did event throughput ever
regress?" meant opening eight JSON files by hand.  This module reads every
``BENCH_pr<N>.json`` at the repo root, normalizes the two artifact formats
that exist in the history (the ``run_bench`` suite format with a
``benchmarks``/``meta`` pair, and the closed-loop ``loadgen`` format from
PR 8 onward), and emits a single trajectory table:

* ``BENCH_history.md`` — a markdown table, one row per PR, one column per
  headline metric (missing cells render as ``—``: not every PR ran every
  benchmark);
* ``BENCH_history.json`` — the same rows as data, for downstream tooling.

Usage::

    python -m benchmarks.history                  # writes both files
    python -m benchmarks.history --root . --quiet
    make bench-history

The table is *descriptive*, not a gate: wall-clock numbers were taken on
different machines across PRs (the ``platform`` column makes that visible).
Trends within a machine generation are meaningful; absolute deltas across
generations are not.
"""

from __future__ import annotations

import argparse
import json
import re
from pathlib import Path
from typing import Any, Dict, List, Optional

_PR_FILE = re.compile(r"BENCH_pr(\d+)\.json$")

#: Ordered headline columns: (key, markdown header) — the union across both
#: artifact formats; a PR that lacks a metric gets an em-dash cell.
COLUMNS = [
    ("bootstrap_n16_wall_s", "bootstrap n16 (s)"),
    ("speedup_bootstrap_n16", "speedup vs seed"),
    ("events_per_second", "events/s"),
    ("audit_sweep_wall_s", "audit sweep (s)"),
    ("audit_sweep_runs", "audit runs"),
    ("matrix_speedup", "matrix speedup"),
    ("loadgen_ops_s", "loadgen ops/s"),
    ("loadgen_p95_ms", "p95 (ms)"),
    ("sweep_cache_speedup", "cache speedup"),
]


def _round(value: Any, digits: int = 2) -> Any:
    if isinstance(value, float):
        return round(value, digits)
    return value


def _extract_run_bench(data: Dict[str, Any]) -> Dict[str, Any]:
    """Headline metrics of a ``run_bench.py`` artifact (PR 1-7 format)."""
    meta = data.get("meta") or {}
    benchmarks = data.get("benchmarks") or {}
    row: Dict[str, Any] = {
        "kind": "run_bench",
        "platform": meta.get("platform"),
        "benchmarks": sorted(benchmarks),
        "speedup_bootstrap_n16": _round(meta.get("speedup_bootstrap_n16")),
    }
    bootstrap = benchmarks.get("bootstrap_n16") or {}
    if bootstrap:
        row["bootstrap_n16_wall_s"] = _round(bootstrap.get("wall_seconds"), 3)
    throughput = benchmarks.get("event_throughput_200000") or {}
    if throughput:
        row["events_per_second"] = _round(throughput.get("events_per_second"), 0)
    sweep = benchmarks.get("audit_sweep") or {}
    if sweep:
        row["audit_sweep_wall_s"] = _round(sweep.get("wall_seconds"))
        row["audit_sweep_runs"] = sweep.get("runs")
    matrix = benchmarks.get("matrix_throughput") or {}
    if matrix:
        row["matrix_speedup"] = _round(matrix.get("speedup_64run_sweep"))
    cache = benchmarks.get("sweep_cache") or {}
    if cache:
        row["sweep_cache_speedup"] = _round(cache.get("speedup_warm"))
        row["sweep_cache_cold_s"] = _round(cache.get("cold_seconds"))
        row["sweep_cache_warm_s"] = _round(cache.get("warm_seconds"), 3)
    return row


def _extract_loadgen(data: Dict[str, Any]) -> Dict[str, Any]:
    """Headline metrics of a ``loadgen`` artifact (PR 8+ format)."""
    counters = (data.get("modes") or {}).get("counters") or {}
    latency = counters.get("latency") or {}
    row: Dict[str, Any] = {
        "kind": "loadgen",
        "benchmarks": sorted((data.get("modes") or {}))
        + (["sweep"] if data.get("sweep") else []),
        "loadgen_ops_s": _round(counters.get("throughput_ops_s"), 1),
        "loadgen_clients": counters.get("clients"),
        "loadgen_p95_ms": _round(latency.get("p95_ms"), 1),
    }
    sweep = data.get("sweep") or {}
    points = sweep.get("points") or []
    if points:
        best = max(
            (p for p in points if p.get("throughput_ops_s") is not None),
            key=lambda p: p["throughput_ops_s"],
            default=None,
        )
        if best:
            row["loadgen_sweep_best_ops_s"] = _round(best["throughput_ops_s"], 1)
            row["loadgen_sweep_best_clients"] = best.get("clients")
    return row


def extract_row(path: Path) -> Optional[Dict[str, Any]]:
    """One normalized trajectory row for a BENCH artifact, or ``None``."""
    match = _PR_FILE.search(path.name)
    if not match:
        return None
    data = json.loads(path.read_text())
    if data.get("bench") == "loadgen":
        row = _extract_loadgen(data)
    elif "benchmarks" in data:
        row = _extract_run_bench(data)
    else:
        row = {"kind": "unknown", "benchmarks": sorted(data)}
    row["pr"] = int(match.group(1))
    row["tag"] = (data.get("meta") or {}).get("tag") or data.get("tag") or path.stem
    row["file"] = path.name
    return row


def collect(root: Path) -> List[Dict[str, Any]]:
    """Every ``BENCH_pr*.json`` under *root* (non-recursive), as rows."""
    rows = []
    for path in sorted(root.glob("BENCH_pr*.json")):
        row = extract_row(path)
        if row is not None:
            rows.append(row)
    rows.sort(key=lambda row: row["pr"])
    return rows


def _cell(value: Any) -> str:
    if value is None:
        return "—"
    if isinstance(value, float) and value == int(value):
        value = int(value)
    return str(value)


def render_markdown(rows: List[Dict[str, Any]]) -> str:
    """The trajectory as a GitHub-flavored markdown table."""
    lines = [
        "# Benchmark trajectory",
        "",
        "Collated from the committed `BENCH_pr*.json` artifacts by "
        "`python -m benchmarks.history`.  Cells are `—` where a PR did not "
        "run that benchmark; wall-clock columns are only comparable within "
        "one machine generation.",
        "",
        "| PR | kind | " + " | ".join(header for _, header in COLUMNS) + " |",
        "|---:|------|" + "|".join("---:" for _ in COLUMNS) + "|",
    ]
    for row in rows:
        cells = [f"pr{row['pr']}", row.get("kind", "?")]
        cells += [_cell(row.get(key)) for key, _ in COLUMNS]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.history", description=__doc__
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory holding the BENCH_pr*.json artifacts (default: .)",
    )
    parser.add_argument(
        "--output-md", default="BENCH_history.md", help="markdown table path"
    )
    parser.add_argument(
        "--output-json", default="BENCH_history.json", help="row data path"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the table on stdout"
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    rows = collect(root)
    if not rows:
        print(f"no BENCH_pr*.json artifacts under {root}")
        return 1
    markdown = render_markdown(rows)
    Path(args.output_md).write_text(markdown)
    Path(args.output_json).write_text(
        json.dumps({"rows": rows}, indent=2, sort_keys=True) + "\n"
    )
    if not args.quiet:
        print(markdown)
    print(f"wrote {args.output_md} and {args.output_json} ({len(rows)} PRs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
