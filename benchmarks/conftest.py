"""Shared helpers for the benchmark harness.

Every benchmark corresponds to an experiment id (E1-E12) from DESIGN.md /
EXPERIMENTS.md and measures the quantity the corresponding theorem or claim
of the paper bounds.  Benchmarks use ``benchmark.pedantic(..., rounds=1)``
because each "iteration" is a full discrete-event simulation whose cost — not
micro-timing — is the interesting number; the measured metrics themselves are
attached to ``benchmark.extra_info`` so they appear in the report.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any, Dict

# Make the test-suite helpers (quick_cluster) importable from benchmarks.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tests"))

from repro.sim.cluster import Cluster, build_cluster
from repro.sim.network import ChannelConfig


def bench_cluster(n: int, seed: int = 1, capacity: int = 8, **kwargs: Any) -> Cluster:
    """A cluster sized for benchmarking (low-latency, lossless channels)."""
    kwargs.setdefault(
        "channel_config",
        ChannelConfig(capacity=capacity, loss_probability=0.0, min_delay=0.2, max_delay=0.6),
    )
    return build_cluster(n=n, seed=seed, **kwargs)


def record(benchmark, metrics: Dict[str, Any]) -> None:
    """Attach experiment metrics to the benchmark report."""
    for key, value in metrics.items():
        benchmark.extra_info[key] = value
