"""E2 (Theorem 3.16, Closure): delicate replacement installs exactly once.

From a stale-free state, an explicit ``estab()`` replaces the configuration
uniformly; no further configuration changes or resets happen afterwards.
Measures the replacement latency and checks the closure property.
"""

from __future__ import annotations

import pytest

from repro.common.types import make_config

from conftest import bench_cluster, record


def _delicate_replacement(n: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    start = cluster.simulator.now
    target = make_config(range(n - 1))
    assert cluster.nodes[0].scheme.request_reconfiguration(target)
    installed = cluster.run_until(
        lambda: cluster.agreed_configuration() == target and cluster.is_converged(),
        timeout=6_000,
    )
    replace_time = cluster.simulator.now - start
    resets_after = sum(node.recsa.reset_count for node in cluster.nodes.values())
    installs = sum(node.recsa.install_count for node in cluster.nodes.values())
    # Closure: nothing else changes afterwards.
    cluster.run(until=cluster.simulator.now + 100)
    stable = cluster.agreed_configuration() == target
    return {
        "n": n,
        "installed": installed,
        "replacement_time": replace_time,
        "installs_per_node": installs / n,
        "resets_during_replacement": resets_after,
        "stable_afterwards": stable,
    }


@pytest.mark.parametrize("n", [4, 6, 8])
def test_delicate_replacement_latency(benchmark, n):
    result = benchmark.pedantic(_delicate_replacement, args=(n, 23), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["installed"] and result["stable_afterwards"]
