"""Codec microbenchmark: encode/decode ns/op per hot wire type, both formats.

The runtime's per-datagram cost is one :func:`repro.common.codec.frame` on
the sender and one :func:`~repro.common.codec.unframe` on the receiver, so
the codec *is* the wire hot path.  This bench measures each hot wire type —
the messages the loadgen profile shows dominating live traffic (data-link
tokens every heartbeat, counter quorum reads/writes per client op, recSA
digest/delta gossip, recMA flags) — through both wire formats:

* ``binary``  — the PR 9 fast path (:func:`codec.frame` /
  :func:`codec.unframe` with the ``B`` discriminator);
* ``json``    — the tagged-JSON fallback (:func:`codec.frame_json`), still
  the fuzz target and the interop path.

Reported per type: encode ns/op, decode ns/op, frame bytes, and the
combined encode+decode speedup of binary over JSON.  Run directly::

    PYTHONPATH=src python benchmarks/bench_codec.py

or through the runner (``make bench-codec``), which embeds the result in
the benchmark JSON trail.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path
from typing import Any, Dict

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common import codec  # noqa: E402
from repro.common.types import Phase, Proposal, make_config  # noqa: E402
from repro.core.recma import RecMAMessage  # noqa: E402
from repro.core.recsa import EchoTriple, RecSADigest  # noqa: E402
from repro.counters.counter import Counter, CounterPair  # noqa: E402
from repro.counters.service import (  # noqa: E402
    CounterGossipMessage,
    MaxReadRequest,
    MaxReadResponse,
    MaxWriteRequest,
)
from repro.datalink.token_exchange import DataLinkMessage  # noqa: E402
from repro.labels.label import EpochLabel  # noqa: E402

_LABEL = EpochLabel(creator=2, sting=7, antistings=frozenset({1, 3}))
_COUNTER = Counter(label=_LABEL, seqn=5, wid=2)
_CPAIR = CounterPair(mct=_COUNTER, cct=_COUNTER)
_ECHO = EchoTriple(
    part=make_config([0, 1, 2]),
    prp=Proposal(Phase.SELECT, make_config([0, 1])),
    all_flag=True,
)


def hot_exemplars() -> Dict[str, Any]:
    """Representative instances of the wire types dominating live traffic."""
    return {
        "DataLinkMessage": DataLinkMessage(
            kind="data", link_sender=1, seq=1, payload=("hb", 3)
        ),
        "MaxReadRequest": MaxReadRequest(sender=2, op_id=41),
        "MaxReadResponse": MaxReadResponse(
            sender=3, op_id=41, counter=_CPAIR, aborted=False
        ),
        "MaxWriteRequest": MaxWriteRequest(
            sender=2, op_id=41, counter=_COUNTER
        ),
        "RecMAMessage": RecMAMessage(sender=0, no_maj=False, need_reconf=True),
        "RecSADigest": RecSADigest(sender=2, version=7, digest=456, echo=_ECHO),
        "CounterGossipMessage": CounterGossipMessage(
            sender=1, sent_max=_CPAIR, last_sent=None
        ),
    }


def _time_ns(fn, reps: int) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(reps):
        fn()
    return (time.perf_counter_ns() - t0) / reps


def bench_codec(reps: int = 20_000) -> Dict[str, Any]:
    """Measure both formats over the hot types; return the result entry."""
    entry: Dict[str, Any] = {"reps": reps, "types": {}}
    speedups = []
    for name, value in hot_exemplars().items():
        binary_frame = codec.frame(value)
        json_frame = codec.frame_json(value)
        # Round-trip equality is asserted here too — a microbench that
        # measures a broken fast path would be worse than no bench.
        assert codec.unframe(binary_frame)[0] == codec.unframe(json_frame)[0]

        bin_enc = _time_ns(lambda v=value: codec.frame(v), reps)
        bin_dec = _time_ns(lambda f=binary_frame: codec.unframe(f), reps)
        json_enc = _time_ns(lambda v=value: codec.frame_json(v), reps)
        json_dec = _time_ns(lambda f=json_frame: codec.unframe(f), reps)
        speedup = round((json_enc + json_dec) / (bin_enc + bin_dec), 2)
        speedups.append(speedup)
        entry["types"][name] = {
            "binary": {
                "encode_ns": round(bin_enc, 1),
                "decode_ns": round(bin_dec, 1),
                "frame_bytes": len(binary_frame),
            },
            "json": {
                "encode_ns": round(json_enc, 1),
                "decode_ns": round(json_dec, 1),
                "frame_bytes": len(json_frame),
            },
            "speedup_encode_decode": speedup,
        }
    entry["min_speedup"] = min(speedups)
    entry["median_speedup"] = sorted(speedups)[len(speedups) // 2]
    entry["all_ok"] = True
    return entry


def main() -> int:
    entry = bench_codec()
    print(json.dumps(entry, indent=2, sort_keys=True))
    for name, cell in sorted(entry["types"].items()):
        print(
            f"[bench-codec] {name}: binary "
            f"{cell['binary']['encode_ns']:.0f}/{cell['binary']['decode_ns']:.0f} ns "
            f"({cell['binary']['frame_bytes']}B)  json "
            f"{cell['json']['encode_ns']:.0f}/{cell['json']['decode_ns']:.0f} ns "
            f"({cell['json']['frame_bytes']}B)  "
            f"speedup {cell['speedup_encode_decode']}x",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
