"""E6 (Theorem 4.4): label creations are bounded.

From an arbitrary (corrupted) label state at most O(N(N^2+m)) fresh labels
are created before a maximal label is agreed; after a reconfiguration only
O(N^2) creations are possible.  The benchmark corrupts the label stores,
lets them converge and counts label creations.
"""

from __future__ import annotations

import pytest

from repro.labels.label import EpochLabel, LabelPair

from conftest import bench_cluster, record


def _label_convergence(n: int, corrupt: bool, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, stack="labels")
    services = cluster.services("labels")
    assert cluster.run_until_converged(timeout=4_000)
    cluster.run(until=cluster.simulator.now + 60)
    if corrupt:
        for pid, svc in services.items():
            if svc.store is None:
                continue
            garbage = EpochLabel(creator=pid, sting=7 + pid, antistings=frozenset({1, 2}))
            svc.store.max_pairs[pid] = LabelPair(ml=garbage, cl=garbage)
    creations_before = sum(svc.labels_created() for svc in services.values())
    converged = cluster.run_until(
        lambda: all(svc.max_label() is not None for svc in services.values())
        and len({svc.max_label() for svc in services.values()}) == 1,
        timeout=6_000,
    )
    creations = sum(svc.labels_created() for svc in services.values()) - creations_before
    m = cluster.channel_capacity * n * n
    return {
        "n": n,
        "corrupted": corrupt,
        "converged_to_single_label": converged,
        "label_creations": creations,
        "bound_arbitrary": n * (n * n + m),
        "bound_post_reconfig": n * n,
        "within_bound": creations <= n * (n * n + m),
    }


@pytest.mark.parametrize("corrupt", [False, True])
def test_label_creations_bounded(benchmark, corrupt):
    result = benchmark.pedantic(_label_convergence, args=(4, corrupt, 47), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged_to_single_label"] and result["within_bound"]
