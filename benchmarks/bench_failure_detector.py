"""E10: the (N, Theta)-failure detector suspects exactly the crashed processors.

Crashes a subset of the cluster and measures how long the failure detectors of
the survivors take to suspect every crashed processor while still trusting
every alive one.
"""

from __future__ import annotations

import pytest

from conftest import bench_cluster, record


def _detection_time(n: int, crashes: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed)
    assert cluster.run_until_converged(timeout=4_000)
    victims = list(range(crashes))
    start = cluster.simulator.now
    for pid in victims:
        cluster.crash(pid)
    alive = [node for node in cluster.alive_nodes()]

    def detected() -> bool:
        for node in alive:
            trusted = node.trusted()
            if any(v in trusted for v in victims):
                return False
            if any(other.pid not in trusted for other in alive):
                return False
        return True

    ok = cluster.run_until(detected, timeout=6_000)
    return {
        "n": n,
        "crashes": crashes,
        "detected": ok,
        "detection_time": cluster.simulator.now - start,
        "false_suspicions": sum(
            1 for node in alive for other in alive if other.pid not in node.trusted()
        ),
    }


@pytest.mark.parametrize("n,crashes", [(4, 1), (6, 2)])
def test_failure_detector_accuracy(benchmark, n, crashes):
    result = benchmark.pedantic(_detection_time, args=(n, crashes, 61), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["detected"] and result["false_suspicions"] == 0
