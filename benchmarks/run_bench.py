"""Benchmark runner: measures the perf-critical scenarios and emits JSON.

Runs without pytest so it can be wired into CI / ``make bench``: each entry
measures wall-clock plus the experiment metrics of one scenario and the
whole trajectory is written to ``BENCH_<tag>.json`` at the repository root,
so successive PRs accumulate comparable perf records.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # <60s smoke run
    PYTHONPATH=src python benchmarks/run_bench.py --tag pr1  # output name
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.sim.cluster import build_cluster  # noqa: E402
from repro.sim.events import EventQueue  # noqa: E402
from repro.sim.network import ChannelConfig  # noqa: E402


#: Measurements of the pre-fast-path tree (PR0 seed) on the same scenarios,
#: taken with the same harness on the CI container; kept in the emitted JSON
#: so every BENCH_*.json is self-contained when comparing trajectories.
SEED_BASELINE = {
    "bootstrap_n16": {
        "wall_seconds": 0.249,
        "time_to_converge": 4.82,
        "executed_events": 3209,
        "messages_delivered": 3142,
    },
    "steady_state_n16": {
        "horizon": 200.0,
        "messages_delivered": 192521,
    },
}


def _bench_cluster(n: int, seed: int, capacity: int = 8, **kwargs):
    config = ChannelConfig(
        capacity=capacity, loss_probability=0.0, min_delay=0.2, max_delay=0.6
    )
    return build_cluster(n=n, seed=seed, channel_config=config, **kwargs)


def bench_event_throughput(n_events: int) -> dict:
    """Raw event queue schedule+drain throughput."""
    queue = EventQueue()
    sink = []
    t0 = time.perf_counter()
    for i in range(n_events):
        queue.schedule(float(i % 97), sink.append, args=(i,))
    while queue:
        queue.pop().fire()
    elapsed = time.perf_counter() - t0
    return {
        "events": n_events,
        "wall_seconds": elapsed,
        "events_per_second": n_events / elapsed if elapsed else None,
    }


def bench_bootstrap(n: int, seed: int, timeout: float = 6_000.0) -> dict:
    """Self-organizing bootstrap to convergence (the E11 scalability core)."""
    t0 = time.perf_counter()
    cluster = _bench_cluster(n, seed=seed)
    converged = cluster.run_until_converged(timeout=timeout)
    elapsed = time.perf_counter() - t0
    stats = cluster.statistics()
    recsa_sent = sum(node.recsa.broadcasts_sent for node in cluster.nodes.values())
    recsa_skipped = sum(node.recsa.broadcasts_skipped for node in cluster.nodes.values())
    recma_sent = sum(node.recma.broadcasts_sent for node in cluster.nodes.values())
    recma_skipped = sum(node.recma.broadcasts_skipped for node in cluster.nodes.values())
    return {
        "n": n,
        "seed": seed,
        "converged": converged,
        "wall_seconds": elapsed,
        "time_to_converge": cluster.simulator.now,
        "executed_events": stats["executed_events"],
        "messages_delivered": stats["delivered_messages"],
        "messages_sent": stats["net_sent"],
        "recsa_broadcasts_sent": recsa_sent,
        "recsa_broadcasts_skipped": recsa_skipped,
        "recma_broadcasts_sent": recma_sent,
        "recma_broadcasts_skipped": recma_skipped,
    }


def bench_steady_state(n: int, seed: int, horizon: float = 200.0) -> dict:
    """Post-convergence steady-state traffic over a fixed sim-time horizon."""
    cluster = _bench_cluster(n, seed=seed)
    if not cluster.run_until_converged(timeout=6_000.0):
        return {"n": n, "seed": seed, "converged": False}
    stats_before = cluster.statistics()
    start = cluster.simulator.now
    t0 = time.perf_counter()
    cluster.run(until=start + horizon)
    elapsed = time.perf_counter() - t0
    stats_after = cluster.statistics()
    delivered = stats_after["delivered_messages"] - stats_before["delivered_messages"]
    events = stats_after["executed_events"] - stats_before["executed_events"]
    return {
        "n": n,
        "seed": seed,
        "converged": True,
        "horizon": horizon,
        "wall_seconds": elapsed,
        "events": events,
        "messages_delivered": delivered,
        "messages_per_simtime": delivered / horizon,
        "events_per_second": events / elapsed if elapsed else None,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smoke run, <60s")
    parser.add_argument("--tag", default="pr1", help="suffix of BENCH_<tag>.json")
    parser.add_argument("--output", default=None, help="explicit output path")
    args = parser.parse_args(argv)

    sizes = [4, 8, 16] if not args.quick else [4, 16]
    event_counts = [200_000] if not args.quick else [100_000]

    results = {
        "meta": {
            "tag": args.tag,
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "seed_baseline": SEED_BASELINE,
        "benchmarks": {},
    }

    for n_events in event_counts:
        key = f"event_throughput_{n_events}"
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_event_throughput(n_events)

    for n in sizes:
        key = f"bootstrap_n{n}"
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_bootstrap(n, seed=89)

    steady_sizes = [8] if args.quick else [8, 16]
    for n in steady_sizes:
        key = f"steady_state_n{n}"
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_steady_state(
            n, seed=89, horizon=100.0 if args.quick else 200.0
        )

    headline = results["benchmarks"].get("bootstrap_n16")
    baseline = SEED_BASELINE.get("bootstrap_n16")
    if headline and baseline and headline.get("wall_seconds"):
        results["meta"]["speedup_bootstrap_n16"] = round(
            baseline["wall_seconds"] / headline["wall_seconds"], 2
        )
        results["meta"]["delivered_reduction_bootstrap_n16"] = round(
            1.0 - headline["messages_delivered"] / baseline["messages_delivered"], 3
        )

    output = Path(args.output) if args.output else REPO_ROOT / f"BENCH_{args.tag}.json"
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {output}")

    failures = [
        key
        for key, entry in results["benchmarks"].items()
        if entry.get("converged") is False
    ]
    if failures:
        print(f"[bench] FAILED to converge: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
