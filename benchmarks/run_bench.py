"""Benchmark runner: measures the perf-critical scenarios and emits JSON.

Runs without pytest so it can be wired into CI / ``make bench``: each entry
measures wall-clock plus the experiment metrics of one scenario and the
whole trajectory is written to ``BENCH_<tag>.json`` at the repository root,
so successive PRs accumulate comparable perf records.

Every simulated workload is expressed through the declarative scenario
engine (:mod:`repro.scenarios`) — a :class:`ScenarioSpec` per measurement
instead of hand-wired cluster construction — and the composed scenario
library is swept across seeds with the engine's multiprocessing matrix.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/run_bench.py --quick    # <60s smoke run
    PYTHONPATH=src python benchmarks/run_bench.py --tag pr1  # output name
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.scenarios import ScenarioSpec, run_matrix, run_scenario  # noqa: E402

from bench_hotpath import _event_throughput  # noqa: E402


#: Measurements of the pre-fast-path tree (PR0 seed) on the same scenarios,
#: taken with the same harness on the CI container; kept in the emitted JSON
#: so every BENCH_*.json is self-contained when comparing trajectories.
SEED_BASELINE = {
    "bootstrap_n16": {
        "wall_seconds": 0.249,
        "time_to_converge": 4.82,
        "executed_events": 3209,
        "messages_delivered": 3142,
    },
    "steady_state_n16": {
        "horizon": 200.0,
        "messages_delivered": 192521,
    },
}

#: Pre-PR7 tree (commit 992c9b2) measured with the same harness, serially,
#: on the same single-CPU container (seed 89): the first 12 sim-units of an
#: n=128 cold bootstrap, full bootstrap-to-convergence at the sizes the old
#: tree could finish, and the headline — an n=128 bootstrap with the failure
#: detector's gap slack scaled to 2n (applied to the old tree by setting
#: ``gap_slack`` on every detector post-build, which is trajectory-identical
#: to this tree's ``fd_gap_slack`` config knob).  ``scale_curve`` compares
#: against these, so every BENCH_pr7.json carries its own before/after
#: evidence for the scale push.
PRE_PR7_BASELINE = {
    "scale_window_n128": {
        "horizon": 12.0,
        "wall_seconds": 9.53,
        "executed_events": 280_673,
    },
    "bootstrap_n24": {
        "time_to_converge": 4.998914279380158,
        "wall_seconds": 0.41,
        "executed_events": 4_166,
    },
    "bootstrap_n48": {
        "time_to_converge": 1041.0157662868814,
        "wall_seconds": 101.64,
        "executed_events": 3_168_013,
    },
    # The acceptance measurement: with default slack the old tree *never*
    # converges at n=128 (the per-event full-scan convergence predicate then
    # burns Theta(n^2) per event forever); with slack=2n it converges at
    # t~5.13 after 153.93s of wall.  This tree: 5.78s (detection throttled
    # to the poll cadence, t=5.2013, +1.37%) or 46.9s with exact per-event
    # polling (byte-identical trajectory: same t, events, resets).
    "bootstrap_n128_scaled_fd": {
        "fd_gap_slack": 256,
        "time_to_converge": 5.131209,
        "wall_seconds": 153.93,
        "executed_events": 125_295,
        "resets": 515,
    },
}

#: The composed scenarios swept by the matrix entry (the library's
#: fault-model scenarios, not the trivial boot baselines).
MATRIX_SCENARIOS = [
    "churn_during_corruption",
    "quorum_edge_crash_storm",
    "flash_join_wave",
    "partition_heal",
    "register_under_churn",
    "arbitrary_state_recovery",
    "arbitrary_state_reorder",
]

#: The time-varying environment-program scenarios swept by the
#: environment-sweep entry (dynamic adversaries over repro.sim.environment).
ENVIRONMENT_SCENARIOS = [
    "coordinator_hunt",
    "partition_leak_recovery",
    "crash_recovery_pulse",
]


def bench_event_throughput(n_events: int) -> dict:
    """Raw event queue schedule+drain throughput (shared with bench_hotpath)."""
    t0 = time.perf_counter()
    _event_throughput(n_events)
    elapsed = time.perf_counter() - t0
    return {
        "events": n_events,
        "wall_seconds": elapsed,
        "events_per_second": n_events / elapsed if elapsed else None,
    }


def bench_bootstrap(n: int, seed: int, timeout: float = 6_000.0) -> dict:
    """Self-organizing bootstrap to convergence (the E11 scalability core)."""
    spec = ScenarioSpec(
        name=f"bootstrap_n{n}", n=n, config="fast_sim", bootstrap_timeout=timeout
    )
    t0 = time.perf_counter()
    result = run_scenario(spec, seed=seed)
    elapsed = time.perf_counter() - t0
    stats = result["statistics"]
    return {
        "n": n,
        "seed": seed,
        "converged": result["bootstrapped"],
        "wall_seconds": elapsed,
        "time_to_converge": stats["time"],
        "executed_events": stats["executed_events"],
        "messages_delivered": stats["delivered_messages"],
        "messages_sent": stats["net_sent"],
        "recsa_broadcasts_sent": stats["recsa_broadcasts_sent"],
        "recsa_broadcasts_skipped": stats["recsa_broadcasts_skipped"],
        "recma_broadcasts_sent": stats["recma_broadcasts_sent"],
        "recma_broadcasts_skipped": stats["recma_broadcasts_skipped"],
    }


def bench_steady_state(n: int, seed: int, horizon: float = 200.0) -> dict:
    """Post-convergence steady-state traffic over a fixed sim-time horizon."""
    spec = ScenarioSpec(
        name=f"steady_state_n{n}",
        n=n,
        config="fast_sim",
        bootstrap_timeout=6_000.0,
        measure_window=horizon,
    )
    result = run_scenario(spec, seed=seed)
    if not result["bootstrapped"]:
        return {"n": n, "seed": seed, "converged": False}
    window = result["window"]
    elapsed = window["wall_seconds"]
    return {
        "n": n,
        "seed": seed,
        "converged": True,
        "horizon": horizon,
        "wall_seconds": elapsed,
        "events": window["executed_events"],
        "messages_delivered": window["delivered_messages"],
        "messages_per_simtime": window["delivered_messages"] / horizon,
        "events_per_second": window["executed_events"] / elapsed if elapsed else None,
    }


def bench_audit_sweep(corruption_seeds, seeds, workers: int) -> dict:
    """Adversarial audit: certify re-convergence from arbitrary states.

    Sweeps every registered adversarial scheduler against seeded full-state
    corruption (see ``docs/audit.md``); the entry records certification plus
    the worst-case stabilization time across the sweep.
    """
    from repro.audit.harness import build_cases, certify
    from repro.audit.schedulers import available_schedulers

    t0 = time.perf_counter()
    cases = build_cases(corruption_seeds=corruption_seeds)
    report = certify(cases, seeds=seeds, workers=workers, shrink_failures=False)
    elapsed = time.perf_counter() - t0
    stabilizations = [
        v["convergence"]["stabilization_time"]
        for v in report["verdicts"]
        if v.get("convergence") and v["convergence"].get("stabilization_time")
    ]
    return {
        "schedulers": available_schedulers(),
        "corruption_seeds": list(corruption_seeds),
        "seeds": list(seeds),
        "runs": report["meta"]["runs"],
        "all_ok": report["certified"],
        "failed": report["failed"],
        "worst_stabilization_time": max(stabilizations) if stabilizations else None,
        "wall_seconds": elapsed,
    }


def bench_environment_sweep(seeds, workers: int, quick: bool) -> dict:
    """Time-varying adversaries: dynamic audit cases + the intensity grid.

    Two measurements in one entry: (a) the three dynamic environment
    programs (crash-recovery blackouts, leaky one-way partition, adaptive
    coordinator targeting) certified against full-state corruption, with the
    worst-case stabilization-time distribution; (b) the environment-driven
    scenario library swept across seeds; and (c) on full runs, the
    CorruptionProfile intensity grid's worst case per profile.
    """
    from repro.audit.harness import build_cases, certify, sweep_profile_grid
    from repro.audit.schedulers import dynamic_schedulers

    t0 = time.perf_counter()
    cases = build_cases(schedulers=dynamic_schedulers(), corruption_seeds=[0])
    report = certify(cases, seeds=seeds, workers=workers, shrink_failures=False)
    sweep = run_matrix(ENVIRONMENT_SCENARIOS, seeds=seeds, workers=workers)
    entry = {
        "dynamic_schedulers": dynamic_schedulers(),
        "scenarios": ENVIRONMENT_SCENARIOS,
        "seeds": list(seeds),
        "runs": report["meta"]["runs"] + len(sweep["results"]),
        "all_ok": report["certified"]
        and all(item.get("ok") for item in sweep["results"]),
        "failed": report["failed"]
        + [
            f"{item['scenario']}@{item['seed']}"
            for item in sweep["results"]
            if not item.get("ok")
        ],
        "stabilization": report["stabilization"],
        "environment_transitions": sum(
            item.get("environment", {}).get("transitions", 0)
            for item in sweep["results"]
        ),
    }
    if not quick:
        grid = sweep_profile_grid(
            schedulers=["uniform", "delay_skew"], seeds=seeds, workers=workers
        )
        entry["profile_grid_worst"] = {
            profile: dist.get("worst") for profile, dist in grid["grid"].items()
        }
        entry["runs"] += grid["meta"]["runs"]
        entry["all_ok"] = entry["all_ok"] and grid["certified"]
        entry["failed"] += grid["failed"]
    entry["wall_seconds"] = time.perf_counter() - t0
    return entry


def _throughput_cell(
    cases, seeds, cold_sample_cases: int | None = None
) -> dict:
    """Measure one matrix tier cold vs warm and report runs/sec for both.

    Both paths run serially (workers=1) so the rates are per-core and the
    comparison is free of pool-scheduling noise.  ``cold_sample_cases``
    bounds how many cases the cold path replays: cold runs don't amortize
    anything, so their per-run rate is measured exactly on a sample instead
    of burning minutes on a full grid (the sample size is recorded).
    """
    from repro.audit.harness import certify

    t0 = time.perf_counter()
    warm = certify(cases, seeds=seeds, workers=1, shrink_failures=False, reuse_prefix=True)
    warm_wall = time.perf_counter() - t0
    warm_runs = warm["meta"]["runs"]

    if cold_sample_cases is None or cold_sample_cases >= len(cases):
        cold_cases = cases
    else:
        # Spread the sample evenly across the (scheduler-major) case list so
        # the cold mix covers the same schedulers the warm rate averages
        # over — a head-slice would measure only the first scheduler's cost.
        total = len(cases)
        cold_cases = [
            cases[index * total // cold_sample_cases]
            for index in range(cold_sample_cases)
        ]
    t0 = time.perf_counter()
    cold = certify(
        cold_cases, seeds=seeds, workers=1, shrink_failures=False, reuse_prefix=False
    )
    cold_wall = time.perf_counter() - t0
    cold_runs = cold["meta"]["runs"]

    warm_rate = warm_runs / warm_wall if warm_wall else None
    cold_rate = cold_runs / cold_wall if cold_wall else None
    return {
        "runs": warm_runs,
        "all_ok": warm["certified"] and cold["certified"],
        "failed": warm["failed"] + cold["failed"],
        "prefix_reuse": warm["meta"]["prefix_reuse"],
        "warm_wall_seconds": warm_wall,
        "warm_runs_per_second": warm_rate,
        "cold_sampled_runs": cold_runs,
        "cold_wall_seconds": cold_wall,
        "cold_runs_per_second": cold_rate,
        "speedup": (warm_rate / cold_rate) if warm_rate and cold_rate else None,
    }


def bench_matrix_throughput(quick: bool) -> dict:
    """Audit-matrix throughput: cold bootstrap-per-run vs warm prefix fan-out.

    The PR 5 headline.  Two tiers of the same shaped sweep (two schedulers x
    corruption seeds x sim seeds): at ``n=5`` recovery dominates and warm
    sharing helps modestly; at ``n=16`` (corruption at t=120, i.e. landing
    on a long-running converged system — the certification-campaign shape,
    and the same instant the n=24 tier corrupts at) the shared prefix
    dominates and the warm path clears 5x runs/sec.
    """
    from repro.audit.harness import build_cases

    t0 = time.perf_counter()
    entry: dict = {"tiers": {}}
    n5_cases = build_cases(
        schedulers=["uniform", "delay_skew"],
        corruption_seeds=range(8 if not quick else 2),
    )
    entry["tiers"]["n5"] = _throughput_cell(
        n5_cases, seeds=range(4 if not quick else 2)
    )
    if not quick:
        n16_cases = build_cases(
            schedulers=["uniform", "delay_skew"],
            corruption_seeds=range(16),
            n=16,
            corrupt_at=120.0,
        )
        # 2 x 16 cases x 2 seeds = the 64-run sweep; cold sampled on 4 cases
        # (8 runs) — cold runs amortize nothing, so the sample rate is exact.
        entry["tiers"]["n16"] = _throughput_cell(
            n16_cases, seeds=range(2), cold_sample_cases=4
        )
        entry["speedup_64run_sweep"] = entry["tiers"]["n16"]["speedup"]
    entry["all_ok"] = all(cell["all_ok"] for cell in entry["tiers"].values())
    entry["failed"] = [f for cell in entry["tiers"].values() for f in cell["failed"]]
    entry["wall_seconds"] = time.perf_counter() - t0
    return entry


def bench_scale_curve(
    sizes,
    seed: int,
    horizon: float = 12.0,
    converge_sizes=(),
    scaled_fd_sizes=(),
    sharded_check_n: int | None = None,
) -> dict:
    """Large-topology throughput curve: the PR 7 scale push headline.

    Every size runs the *same* fixed sim-time window — the first ``horizon``
    sim-units of a cold bootstrap — so the wall-clock per size is a pure
    per-event-cost measurement, comparable across trees regardless of how
    long full convergence takes at that size.  Sizes in ``converge_sizes``
    additionally run bootstrap to convergence, pinning the sim-time semantics
    (``time_to_converge`` must match the pre-PR tree: the fast paths are
    behavior-preserving).  Sizes in ``scaled_fd_sizes`` bootstrap with the
    failure detector's gap slack scaled to ``2n`` (``fd_gap_slack``) — the
    regime where large topologies actually converge — and the n=128 leg is
    compared against ``PRE_PR7_BASELINE`` for the acceptance speedup.
    ``sharded_check_n`` cross-checks the sharded simulator at one size: a
    window-synchronized run must produce statistics byte-identical to the
    single-process run.
    """
    from repro.sim.cluster import build_cluster
    from repro.sim.config import fast_sim

    entry: dict = {"horizon": horizon, "seed": seed, "curve": {}}
    for n in sizes:
        cluster = build_cluster(n=n, seed=seed, config=fast_sim())
        t0 = time.perf_counter()
        cluster.run(until=horizon)
        elapsed = time.perf_counter() - t0
        stats = cluster.statistics()
        entry["curve"][f"n{n}"] = {
            "n": n,
            "wall_seconds": elapsed,
            "executed_events": stats["executed_events"],
            "delivered_messages": stats["delivered_messages"],
            "events_per_second": (
                stats["executed_events"] / elapsed if elapsed else None
            ),
            "converged_within_window": cluster.is_converged(),
        }

    for n in converge_sizes:
        cluster = build_cluster(n=n, seed=seed, config=fast_sim())
        t0 = time.perf_counter()
        converged = cluster.run_until_converged(timeout=6_000.0)
        elapsed = time.perf_counter() - t0
        stats = cluster.statistics()
        entry.setdefault("bootstrap", {})[f"n{n}"] = {
            "n": n,
            "converged": converged,
            "wall_seconds": elapsed,
            "time_to_converge": cluster.simulator.now,
            "executed_events": stats["executed_events"],
        }
        baseline = PRE_PR7_BASELINE.get(f"bootstrap_n{n}")
        if baseline and converged and elapsed:
            entry["bootstrap"][f"n{n}"]["speedup_vs_pre_pr7"] = round(
                baseline["wall_seconds"] / elapsed, 2
            )
            entry["bootstrap"][f"n{n}"]["sim_time_delta_pct"] = round(
                100.0
                * (cluster.simulator.now - baseline["time_to_converge"])
                / baseline["time_to_converge"],
                3,
            )

    for n in scaled_fd_sizes:
        slack = 2 * n
        cluster = build_cluster(n=n, seed=seed, config=fast_sim(fd_gap_slack=slack))
        t0 = time.perf_counter()
        converged = cluster.run_until_converged(timeout=6_000.0)
        elapsed = time.perf_counter() - t0
        stats = cluster.statistics()
        cell = {
            "n": n,
            "fd_gap_slack": slack,
            "converged": converged,
            "wall_seconds": elapsed,
            "time_to_converge": cluster.simulator.now,
            "executed_events": stats["executed_events"],
            "resets": stats["resets"],
        }
        baseline = PRE_PR7_BASELINE.get(f"bootstrap_n{n}_scaled_fd")
        if baseline and converged and elapsed:
            cell["speedup_vs_pre_pr7"] = round(
                baseline["wall_seconds"] / elapsed, 2
            )
            cell["sim_time_delta_pct"] = round(
                100.0
                * (cluster.simulator.now - baseline["time_to_converge"])
                / baseline["time_to_converge"],
                3,
            )
        entry.setdefault("bootstrap_scaled_fd", {})[f"n{n}"] = cell

    if sharded_check_n is not None:
        from repro.sim.sharded import build_sharded_cluster

        config = fast_sim(broadcast_streams="per_source")
        single = build_cluster(n=sharded_check_n, seed=seed, config=config)
        single.run(until=horizon)
        sharded = build_sharded_cluster(
            n=sharded_check_n, seed=seed, shards=4, config=config
        )
        t0 = time.perf_counter()
        sharded.run(until=horizon)
        entry["sharded_check"] = {
            "n": sharded_check_n,
            "shards": 4,
            "wall_seconds": time.perf_counter() - t0,
            "statistics_identical": sharded.statistics() == single.statistics(),
        }

    baseline = PRE_PR7_BASELINE["scale_window_n128"]
    current = entry["curve"].get("n128")
    if current and current["wall_seconds"] and horizon == baseline["horizon"]:
        entry["speedup_n128_window_vs_pre_pr7"] = round(
            baseline["wall_seconds"] / current["wall_seconds"], 2
        )
    headline = entry.get("bootstrap_scaled_fd", {}).get("n128")
    if headline and "speedup_vs_pre_pr7" in headline:
        entry["speedup_n128_bootstrap_vs_pre_pr7"] = headline["speedup_vs_pre_pr7"]
    entry["all_ok"] = (
        all(item["converged"] for item in entry.get("bootstrap", {}).values())
        and all(
            item["converged"]
            for item in entry.get("bootstrap_scaled_fd", {}).values()
        )
        and entry.get("sharded_check", {}).get("statistics_identical", True)
    )
    return entry


def bench_codec_micro() -> dict:
    """Wire-codec encode/decode ns/op per hot type, both formats (PR 9)."""
    from bench_codec import bench_codec

    t0 = time.perf_counter()
    entry = bench_codec()
    entry["wall_seconds"] = time.perf_counter() - t0
    return entry


def bench_sharded_cores(n: int, seed: int, horizon: float = 12.0) -> dict:
    """Real-core sharded-sim speedup: fork-mode sharded vs serial wall.

    Open since PR 7: every earlier sharded measurement ran serial-mode (one
    process, windows round-robin), which measures the sharding *overhead*,
    not the speedup.  This entry runs the same fixed window on
    ``os.cpu_count()`` fork workers and compares wall clocks — and on a
    1-CPU container it *skips with a recorded reason* instead of silently
    benchmarking contention (fork workers on one core can only lose).
    """
    import os

    from repro.sim.cluster import build_cluster
    from repro.sim.config import fast_sim
    from repro.sim.sharded import build_sharded_cluster

    cores = os.cpu_count() or 1
    if cores < 2:
        return {
            "skipped": True,
            "reason": (
                f"os.cpu_count()={cores}: fork-mode shards would time "
                "scheduler contention, not parallel speedup"
            ),
            "cpu_count": cores,
            "all_ok": True,
        }
    shards = min(cores, 4)
    config = fast_sim(broadcast_streams="per_source")
    entry: dict = {"n": n, "seed": seed, "horizon": horizon,
                   "cpu_count": cores, "shards": shards}

    serial = build_cluster(n=n, seed=seed, config=config)
    t0 = time.perf_counter()
    serial.run(until=horizon)
    entry["serial_wall_seconds"] = time.perf_counter() - t0
    serial_stats = serial.statistics()

    forked = build_sharded_cluster(
        n=n, seed=seed, shards=shards, mode="fork", config=config
    )
    try:
        t0 = time.perf_counter()
        forked.run(until=horizon)
        entry["fork_wall_seconds"] = time.perf_counter() - t0
        entry["statistics_identical"] = forked.statistics() == serial_stats
    finally:
        forked.close()
    entry["speedup"] = round(
        entry["serial_wall_seconds"] / entry["fork_wall_seconds"], 2
    ) if entry["fork_wall_seconds"] else None
    entry["all_ok"] = entry["statistics_identical"]
    return entry


def bench_sweep_cache(workers: int, quick: bool) -> dict:
    """Persistent sweep cache: cold vs warm re-run of the smoke matrix (PR 10).

    Runs the CI smoke matrix twice against a fresh cache directory.  The
    cold pass computes and persists every cell; the warm pass must be
    answered entirely from the store — the acceptance bar is a >= 5x
    wall-clock speedup with **byte-identical** deterministic reports.  A
    third leg measures the incremental shape that motivates the cache: an
    *unseen* corruption seed (every result a miss) resuming the
    pre-corruption prefix snapshots already on disk.
    """
    import shutil
    import tempfile

    from repro.audit.__main__ import smoke_cases
    from repro.audit.harness import build_cases, certify
    from repro.audit.store import SweepStore, report_bytes

    if quick:
        cases = build_cases(
            schedulers=["uniform", "delay_skew"], corruption_seeds=range(2)
        )
        seeds = [0]
    else:
        cases = smoke_cases()
        seeds = [0, 1, 2]

    directory = tempfile.mkdtemp(prefix="bench_sweep_cache_")
    try:
        with SweepStore(directory) as store:
            t0 = time.perf_counter()
            cold = certify(
                cases, seeds=seeds, workers=workers, shrink_failures=False, store=store
            )
            cold_wall = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm = certify(
                cases, seeds=seeds, workers=workers, shrink_failures=False, store=store
            )
            warm_wall = time.perf_counter() - t0
            # The incremental extension: new corruption seeds miss every
            # result row but share the static schedulers' pre-corruption
            # prefixes, which the cold pass persisted.
            extension = build_cases(
                schedulers=["uniform", "delay_skew"], corruption_seeds=[7]
            )
            t0 = time.perf_counter()
            extended = certify(
                extension,
                seeds=seeds,
                workers=workers,
                shrink_failures=False,
                store=store,
            )
            extend_wall = time.perf_counter() - t0
            db_bytes = store.stats()["db_bytes"]
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    identical = report_bytes(cold) == report_bytes(warm)
    speedup = (cold_wall / warm_wall) if warm_wall else None
    warm_cache = warm["meta"]["cache"]
    return {
        "runs": cold["meta"]["runs"],
        "cold_seconds": cold_wall,
        "warm_seconds": warm_wall,
        "speedup_warm": round(speedup, 1) if speedup else None,
        "byte_identical": identical,
        "warm_hit_rate": warm_cache["hit_rate"],
        "snapshots_written_cold": cold["meta"]["cache"]["snapshots_written"],
        "extension": {
            "runs": extended["meta"]["runs"],
            "wall_seconds": extend_wall,
            "snapshot_hits": extended["meta"]["cache"]["snapshot_hits"],
        },
        "db_bytes": db_bytes,
        "all_ok": bool(
            identical
            and speedup is not None
            and speedup >= 5.0
            and warm_cache["hit_rate"] == 1.0
            and cold["certified"]
            and warm["certified"]
            and extended["certified"]
        ),
    }


def bench_scenario_matrix(seeds, workers: int) -> dict:
    """Seed-sweep of the composed scenario library via the parallel runner."""
    t0 = time.perf_counter()
    sweep = run_matrix(MATRIX_SCENARIOS, seeds=seeds, workers=workers)
    elapsed = time.perf_counter() - t0
    results = sweep["results"]
    return {
        "scenarios": MATRIX_SCENARIOS,
        "seeds": list(seeds),
        "workers": sweep["meta"]["workers"],
        "runs": len(results),
        "all_ok": all(entry.get("ok") for entry in results),
        "failed": [
            f"{entry['scenario']}@{entry['seed']}"
            for entry in results
            if not entry.get("ok")
        ],
        "wall_seconds": elapsed,
        "delivered_messages_total": sum(
            entry.get("statistics", {}).get("delivered_messages", 0)
            for entry in results
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smoke run, <60s")
    parser.add_argument("--tag", default="pr7", help="suffix of BENCH_<tag>.json")
    parser.add_argument("--output", default=None, help="explicit output path")
    parser.add_argument("--workers", type=int, default=4, help="matrix sweep workers")
    parser.add_argument(
        "--only",
        default=None,
        help="run a single benchmark entry by name (e.g. matrix_throughput)",
    )
    args = parser.parse_args(argv)

    sizes = [4, 8, 16] if not args.quick else [4, 16]
    event_counts = [200_000] if not args.quick else [100_000]
    matrix_seeds = range(4) if not args.quick else range(2)

    results = {
        "meta": {
            "tag": args.tag,
            "quick": args.quick,
            "python": platform.python_version(),
            "platform": platform.platform(),
        },
        "seed_baseline": SEED_BASELINE,
        "benchmarks": {},
    }

    # Flag-independent name set: a valid entry name must never be rejected
    # just because the current mode (e.g. --quick) happens to exclude it —
    # such a selection runs zero benchmarks and fails via the
    # selected-nothing guard below instead.
    known_entries = {
        "event_throughput",
        "bootstrap",
        "steady_state",
        "scenario_matrix",
        "audit_sweep",
        "environment_sweep",
        "matrix_throughput",
        "scale_curve",
        "codec_micro",
        "sharded_cores",
        "sweep_cache",
    } | {f"event_throughput_{n}" for n in (100_000, 200_000)} \
      | {f"bootstrap_n{n}" for n in (4, 8, 16)} \
      | {f"steady_state_n{n}" for n in (8, 16)}
    if args.only is not None and args.only not in known_entries:
        # A typo must fail loudly, not write an empty benchmark file and
        # exit 0 (which would silently kill the CI timing trail).
        print(
            f"[bench] unknown --only entry {args.only!r}; "
            f"known: {sorted(known_entries)}",
            file=sys.stderr,
        )
        return 2

    def want(key: str) -> bool:
        return args.only is None or args.only == key

    for n_events in event_counts:
        key = f"event_throughput_{n_events}"
        if not want(key) and not want("event_throughput"):
            continue
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_event_throughput(n_events)

    for n in sizes:
        key = f"bootstrap_n{n}"
        if not want(key) and not want("bootstrap"):
            continue
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_bootstrap(n, seed=89)

    steady_sizes = [8] if args.quick else [8, 16]
    for n in steady_sizes:
        key = f"steady_state_n{n}"
        if not want(key) and not want("steady_state"):
            continue
        print(f"[bench] {key} ...", flush=True)
        results["benchmarks"][key] = bench_steady_state(
            n, seed=89, horizon=100.0 if args.quick else 200.0
        )

    if want("codec_micro"):
        print("[bench] codec_micro ...", flush=True)
        results["benchmarks"]["codec_micro"] = bench_codec_micro()

    if want("sharded_cores"):
        print("[bench] sharded_cores ...", flush=True)
        results["benchmarks"]["sharded_cores"] = bench_sharded_cores(
            n=24 if args.quick else 48, seed=89
        )

    if want("scenario_matrix"):
        print("[bench] scenario_matrix ...", flush=True)
        results["benchmarks"]["scenario_matrix"] = bench_scenario_matrix(
            seeds=matrix_seeds, workers=args.workers
        )

    if want("audit_sweep"):
        print("[bench] audit_sweep ...", flush=True)
        audit_corruptions = range(2) if not args.quick else range(1)
        results["benchmarks"]["audit_sweep"] = bench_audit_sweep(
            corruption_seeds=audit_corruptions,
            seeds=matrix_seeds,
            workers=args.workers,
        )

    if want("environment_sweep"):
        print("[bench] environment_sweep ...", flush=True)
        results["benchmarks"]["environment_sweep"] = bench_environment_sweep(
            seeds=matrix_seeds, workers=args.workers, quick=args.quick
        )

    if want("sweep_cache"):
        print("[bench] sweep_cache ...", flush=True)
        results["benchmarks"]["sweep_cache"] = bench_sweep_cache(
            workers=args.workers, quick=args.quick
        )

    if want("matrix_throughput"):
        print("[bench] matrix_throughput ...", flush=True)
        results["benchmarks"]["matrix_throughput"] = bench_matrix_throughput(
            quick=args.quick
        )

    if want("scale_curve"):
        print("[bench] scale_curve ...", flush=True)
        results["benchmarks"]["scale_curve"] = bench_scale_curve(
            sizes=[24, 48] if args.quick else [24, 48, 128, 256],
            seed=89,
            converge_sizes=[24] if args.quick else [24, 48],
            scaled_fd_sizes=[128],
            sharded_check_n=24 if args.quick else 48,
        )
        results["seed_baseline"]["pre_pr7"] = PRE_PR7_BASELINE

    if args.only is not None and not results["benchmarks"]:
        # Belt over the name-validation braces: if the known-entries set ever
        # drifts from the run loop, an --only run that selected nothing must
        # still fail loudly instead of writing an empty timing file.
        print(f"[bench] --only {args.only!r} selected no benchmarks", file=sys.stderr)
        return 2

    headline = results["benchmarks"].get("bootstrap_n16")
    baseline = SEED_BASELINE.get("bootstrap_n16")
    if headline and baseline and headline.get("wall_seconds"):
        results["meta"]["speedup_bootstrap_n16"] = round(
            baseline["wall_seconds"] / headline["wall_seconds"], 2
        )
        results["meta"]["delivered_reduction_bootstrap_n16"] = round(
            1.0 - headline["messages_delivered"] / baseline["messages_delivered"], 3
        )

    output = Path(args.output) if args.output else REPO_ROOT / f"BENCH_{args.tag}.json"
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"[bench] wrote {output}")

    failures = [
        key
        for key, entry in results["benchmarks"].items()
        if entry.get("converged") is False or entry.get("all_ok") is False
    ]
    if failures:
        print(f"[bench] FAILED: {failures}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
