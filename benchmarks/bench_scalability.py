"""E11: scalability of convergence with system size and channel capacity.

The large-n window benchmarks (``test_window_scaling_with_n``) measure the
first ``WINDOW`` sim-units of a cold bootstrap at sizes where full
convergence is too slow for a pytest benchmark — per-event cost and peak
resident memory are the quantities that must stay flat as n grows (the
PR 7 scale push: lazy channel materialization keeps the n=256 footprint
proportional to *used* links, not the ~65k possible ones).
"""

from __future__ import annotations

import resource
import sys

import pytest

from conftest import bench_cluster, record

#: Fixed sim-time window for the large-n benchmarks (matches the
#: ``scale_curve`` entry of ``run_bench.py``).
WINDOW = 12.0


def _peak_rss_mib() -> float:
    """Peak resident set size of this process, in MiB.

    ``ru_maxrss`` is kilobytes on Linux, bytes on macOS; both are coarse
    (high-water mark, not current usage) but need no extra dependencies.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return peak / (1024.0 * 1024.0)
    return peak / 1024.0


def _bootstrap(n: int, capacity: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, capacity=capacity)
    converged = cluster.run_until_converged(timeout=6_000)
    stats = cluster.statistics()
    return {
        "n": n,
        "capacity": capacity,
        "converged": converged,
        "time_to_converge": cluster.simulator.now,
        "messages_delivered": stats["delivered_messages"],
        "messages_per_node": stats["delivered_messages"] / n,
    }


def _window(n: int, capacity: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, capacity=capacity)
    cluster.run(until=WINDOW)
    stats = cluster.statistics()
    return {
        "n": n,
        "capacity": capacity,
        "window": WINDOW,
        "executed_events": stats["executed_events"],
        "events_per_node": stats["executed_events"] / n,
        "messages_delivered": stats["delivered_messages"],
        "peak_rss_mib": _peak_rss_mib(),
    }


@pytest.mark.parametrize("n", [4, 8, 16])
def test_convergence_scaling_with_n(benchmark, n):
    result = benchmark.pedantic(_bootstrap, args=(n, 8, 89), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]


@pytest.mark.parametrize("n", [32, 64, 128])
def test_window_scaling_with_n(benchmark, n):
    """Fixed-window event cost + peak RSS at sizes beyond full-convergence."""
    result = benchmark.pedantic(_window, args=(n, 8, 89), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["executed_events"] > 0


@pytest.mark.parametrize("capacity", [2, 8])
def test_convergence_scaling_with_capacity(benchmark, capacity):
    result = benchmark.pedantic(_bootstrap, args=(6, capacity, 97), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]
