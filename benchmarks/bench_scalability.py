"""E11: scalability of convergence with system size and channel capacity."""

from __future__ import annotations

import pytest

from conftest import bench_cluster, record


def _bootstrap(n: int, capacity: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, capacity=capacity)
    converged = cluster.run_until_converged(timeout=6_000)
    stats = cluster.statistics()
    return {
        "n": n,
        "capacity": capacity,
        "converged": converged,
        "time_to_converge": cluster.simulator.now,
        "messages_delivered": stats["delivered_messages"],
        "messages_per_node": stats["delivered_messages"] / n,
    }


@pytest.mark.parametrize("n", [4, 8, 16])
def test_convergence_scaling_with_n(benchmark, n):
    result = benchmark.pedantic(_bootstrap, args=(n, 8, 89), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]


@pytest.mark.parametrize("capacity", [2, 8])
def test_convergence_scaling_with_capacity(benchmark, capacity):
    result = benchmark.pedantic(_bootstrap, args=(6, capacity, 97), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["converged"]
