"""Micro-benchmarks of the simulation hot path (event queue, gossip round).

Unlike the experiment benchmarks (E1-E12) these do not reproduce a claim of
the paper; they pin the cost of the two inner loops every experiment runs
through — event scheduling/dispatch and the recSA broadcast round — so that
future PRs can detect regressions in the fast path itself.
"""

from __future__ import annotations

import pytest

from conftest import bench_cluster, record

from repro.core.recsa import RecSA
from repro.sim.events import EventQueue


def _event_throughput(n_events: int) -> dict:
    """Schedule and drain *n_events* through the tuple heap."""
    queue = EventQueue()
    sink = []
    append = sink.append
    for i in range(n_events):
        queue.schedule(float(i % 97), append, args=(i,))
    drained = 0
    while queue:
        queue.pop().fire()
        drained += 1
    return {"events": n_events, "drained": drained}


def _event_bulk_throughput(n_events: int, batch: int) -> dict:
    """Same, but scheduling through the ``schedule_many`` bulk API."""
    queue = EventQueue()
    sink = []
    append = sink.append
    for start in range(0, n_events, batch):
        queue.schedule_many(
            (float((start + i) % 97), append, (start + i,), "")
            for i in range(min(batch, n_events - start))
        )
    drained = 0
    while queue:
        queue.pop().fire()
        drained += 1
    return {"events": n_events, "batch": batch, "drained": drained}


def _broadcast_round_cost(n: int, rounds: int) -> dict:
    """Cost of *rounds* recSA do-forever iterations over a synchronous mesh.

    Messages are exchanged through plain python lists (no simulator), so the
    number measures the protocol layer itself: message construction, change
    detection and receipt bookkeeping.
    """
    from repro.common.types import BOTTOM

    pids = list(range(n))
    inboxes: dict = {pid: [] for pid in pids}
    instances = {}
    for pid in pids:
        def _send(dest, message, _pid=pid):
            inboxes[dest].append((_pid, message))

        instances[pid] = RecSA(
            pid=pid,
            fd_provider=lambda _pids=frozenset(pids): _pids,
            send=_send,
            initial_config=BOTTOM,
        )
    messages = 0
    for _ in range(rounds):
        for pid in pids:
            instances[pid].step()
        for pid in pids:
            queue = inboxes[pid]
            inboxes[pid] = []
            messages += len(queue)
            for sender, message in queue:
                instances[pid].on_message(sender, message)
    sent = sum(inst.broadcasts_sent for inst in instances.values())
    skipped = sum(inst.broadcasts_skipped for inst in instances.values())
    return {
        "n": n,
        "rounds": rounds,
        "messages_exchanged": messages,
        "broadcasts_sent": sent,
        "broadcasts_skipped": skipped,
    }


def _delivery_path_cost(n: int, until: float) -> dict:
    """End-to-end simulator cost: a full cluster run for *until* sim-time."""
    cluster = bench_cluster(n, seed=7)
    cluster.run(until=until)
    stats = cluster.statistics()
    return {
        "n": n,
        "executed_events": stats["executed_events"],
        "delivered_messages": stats["delivered_messages"],
    }


@pytest.mark.parametrize("n_events", [100_000])
def test_event_queue_throughput(benchmark, n_events):
    result = benchmark.pedantic(_event_throughput, args=(n_events,), rounds=3, iterations=1)
    record(benchmark, result)
    assert result["drained"] == n_events


@pytest.mark.parametrize("batch", [64])
def test_event_queue_bulk_throughput(benchmark, batch):
    result = benchmark.pedantic(
        _event_bulk_throughput, args=(100_000, batch), rounds=3, iterations=1
    )
    record(benchmark, result)
    assert result["drained"] == 100_000


@pytest.mark.parametrize("n", [16])
def test_recsa_broadcast_round(benchmark, n):
    result = benchmark.pedantic(_broadcast_round_cost, args=(n, 50), rounds=3, iterations=1)
    record(benchmark, result)
    assert result["broadcasts_sent"] > 0
    # Change detection must actually suppress steady-state traffic.
    assert result["broadcasts_skipped"] > result["broadcasts_sent"]


@pytest.mark.parametrize("n", [8])
def test_simulator_delivery_path(benchmark, n):
    result = benchmark.pedantic(_delivery_path_cost, args=(n, 50.0), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["executed_events"] > 0
