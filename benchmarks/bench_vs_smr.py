"""E8 (Theorem 4.13): virtually synchronous SMR throughput and state safety.

Measures view-establishment latency, multicast-round throughput and checks
that all replicas apply the same command sequence (the virtual-synchrony
property) — including after a coordinator crash.
"""

from __future__ import annotations

import pytest

from repro.vs.virtual_synchrony import VSStatus

from conftest import bench_cluster, record


def _smr_run(n: int, commands: int, crash_coordinator: bool, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, stack="vs_smr")
    services = cluster.services("vs")
    assert cluster.run_until_converged(timeout=4_000)
    view_ok = cluster.run_until(
        lambda: any(
            vs.view is not None and vs.status is VSStatus.MULTICAST and vs.is_coordinator()
            for pid, vs in services.items()
            if not cluster.nodes[pid].crashed
        ),
        timeout=8_000,
    )
    view_time = cluster.simulator.now
    for index in range(commands):
        services[index % n].submit(f"cmd-{index}")
    if crash_coordinator:
        coord = next(
            pid
            for pid, vs in services.items()
            if vs.is_coordinator() and not cluster.nodes[pid].crashed
        )
        cluster.crash(coord)
    alive = lambda: [pid for pid in services if not cluster.nodes[pid].crashed]
    delivered = cluster.run_until(
        lambda: all(len(services[pid].machine.log) >= commands - n for pid in alive()),
        timeout=cluster.simulator.now + 12_000,
    )
    logs = {tuple(services[pid].machine.log) for pid in alive()}
    prefix_consistent = len({log[: min(len(l) for l in logs)] for log in logs}) <= 1 if logs else True
    return {
        "n": n,
        "commands": commands,
        "view_establishment_time": view_time,
        "view_established": view_ok,
        "delivered": delivered,
        "identical_logs": len(logs) == 1,
        "prefix_consistent": prefix_consistent,
        "rounds": max(services[pid].rnd for pid in alive()),
    }


def test_smr_total_order_throughput(benchmark):
    result = benchmark.pedantic(_smr_run, args=(4, 12, False, 67), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["view_established"] and result["identical_logs"]


def test_smr_survives_coordinator_crash(benchmark):
    result = benchmark.pedantic(_smr_run, args=(4, 8, True, 71), rounds=1, iterations=1)
    record(benchmark, result)
    assert result["view_established"] and result["prefix_consistent"]
