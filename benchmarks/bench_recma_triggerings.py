"""E3 (Lemma 3.18): spurious recMA triggerings are bounded by O(N^2 * cap).

Corrupt every node's noMaj/needReconf flags and stuff stale flag packets into
the channels; count how many reconfigurations get triggered before the system
settles, and compare against the analytical bound.
"""

from __future__ import annotations

import pytest

from repro.workloads.corruption import corrupt_recma_flags, stuff_stale_recma_packets

from conftest import bench_cluster, record


def _spurious_triggerings(n: int, capacity: int, seed: int) -> dict:
    cluster = bench_cluster(n, seed=seed, capacity=capacity)
    assert cluster.run_until_converged(timeout=4_000)
    universe = list(range(n))
    for node in cluster.nodes.values():
        corrupt_recma_flags(node, universe, seed=seed)
    stuffed = 0
    for target in range(n):
        stuffed += stuff_stale_recma_packets(cluster, target=target, count=capacity, seed=seed)
    cluster.run(until=cluster.simulator.now + 400)
    triggers = sum(node.recma.trigger_count for node in cluster.nodes.values())
    settled = cluster.run_until_converged(timeout=6_000)
    return {
        "n": n,
        "capacity": capacity,
        "stale_packets_injected": stuffed,
        "spurious_triggerings": triggers,
        "bound_n2_cap": n * n * capacity,
        "within_bound": triggers <= n * n * capacity,
        "settled": settled,
    }


@pytest.mark.parametrize("n,capacity", [(4, 4), (6, 8)])
def test_spurious_triggerings_bounded(benchmark, n, capacity):
    result = benchmark.pedantic(
        _spurious_triggerings, args=(n, capacity, 31), rounds=1, iterations=1
    )
    record(benchmark, result)
    assert result["within_bound"] and result["settled"]
