#!/usr/bin/env python
"""Quickstart: self-organizing configuration, joining, and reconfiguration.

The example builds a five-node cluster from a declarative
:class:`~repro.sim.config.ClusterConfig` preset, lets it self-organize into a
quorum configuration, adds a joiner, crashes a majority of the configuration
and shows the scheme recovering by installing a new configuration over the
survivors.  The final phase runs one of the composed scenarios from the
declarative scenario library — the same engine behind
``python -m repro.scenarios``.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_cluster, fast_sim
from repro.scenarios import run_scenario


def main() -> None:
    cluster = build_cluster(n=5, seed=42, config=fast_sim())

    print("== phase 1: self-organization from an arbitrary start ==")
    converged = cluster.run_until_converged(timeout=2_000)
    config = cluster.agreed_configuration()
    print(f"converged: {converged} at t={cluster.simulator.now:.1f}")
    print(f"agreed configuration: {sorted(config)}")

    print("\n== phase 2: a new processor joins ==")
    joiner = cluster.add_joiner(99)
    cluster.run_until(lambda: joiner.scheme.is_participant(), timeout=4_000)
    print(f"processor 99 participant: {joiner.scheme.is_participant()}")
    print(f"processor 99 sees configuration: {sorted(joiner.current_config() or [])}")

    print("\n== phase 3: majority collapse and automatic reconfiguration ==")
    victims = sorted(config)[: len(config) // 2 + 1]
    for pid in victims:
        cluster.crash(pid)
    print(f"crashed a majority of the configuration: {victims}")
    recovered = cluster.run_until(
        lambda: cluster.is_converged() and cluster.agreed_configuration() != config,
        timeout=8_000,
    )
    new_config = cluster.agreed_configuration()
    print(f"reconfigured: {recovered} at t={cluster.simulator.now:.1f}")
    print(f"new configuration: {sorted(new_config or [])}")
    print(f"recMA triggerings: "
          f"{sum(node.recma.trigger_count for node in cluster.nodes.values())}")

    stats = cluster.statistics()
    print("\n== run statistics ==")
    for key in ("time", "executed_events", "delivered_messages", "resets", "installs"):
        print(f"  {key}: {stats[key]}")

    print("\n== phase 4: a composed scenario from the library ==")
    result = run_scenario("churn_during_corruption", seed=1)
    print(f"scenario: {result['scenario']} (stack={result['stack']})")
    print(f"ok: {result['ok']}, probes: "
          f"{ {name: entry['satisfied'] for name, entry in result['probes'].items()} }")
    print("explore more with: python -m repro.scenarios --list")


if __name__ == "__main__":
    main()
