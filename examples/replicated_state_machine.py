#!/usr/bin/env python
"""Virtually synchronous state-machine replication with reconfiguration.

A four-node cluster runs the full application stack of the paper's
Section 4.3 through the ``vs_smr`` stack profile: bounded labels, counters,
and the coordinator-based virtually synchronous SMR replicating a key-value
store.  The example adds a joiner and lets the coordinator perform a
delicate reconfiguration (triggered through the node's ``control`` mailbox)
that carries the replicated state over to the new configuration.

Run with::

    python examples/replicated_state_machine.py
"""

from __future__ import annotations

from repro import build_cluster, fast_sim, stack
from repro.analysis.probes import view_is_installed
from repro.vs.smr import KeyValueStateMachine


def main() -> None:
    cluster = build_cluster(
        n=4,
        seed=7,
        config=fast_sim(),
        stack=stack("vs_smr", state_machine=KeyValueStateMachine),
    )
    services = cluster.services("vs")

    print("== establishing the configuration and the first view ==")
    cluster.run_until_converged(timeout=2_000)
    cluster.run_until(lambda: view_is_installed(cluster), timeout=6_000)
    coordinator = next(pid for pid, vs in services.items() if vs.is_coordinator())
    print(f"coordinator: {coordinator}, view: "
          f"{sorted(services[coordinator].view.members)}")

    print("\n== replicating commands ==")
    services[0].submit(("put", "language", "python"))
    services[1].submit(("put", "paper", "self-stabilizing reconfiguration"))
    services[2].submit(("put", "venue", "MIDDLEWARE 2016"))
    cluster.run_until(
        lambda: all(len(vs.machine.data) == 3 for vs in services.values()),
        timeout=cluster.simulator.now + 800,
    )
    print("replica 3 key-value state:", services[3].machine.data)

    print("\n== joiner + coordinator-led delicate reconfiguration ==")
    joiner = cluster.add_joiner(10)
    cluster.run_until(lambda: joiner.scheme.is_participant(), timeout=5_000)
    cluster.nodes[coordinator].control["reconfigure"] = True
    cluster.run_until(
        lambda: cluster.agreed_configuration() is not None
        and 10 in cluster.agreed_configuration(),
        timeout=8_000,
    )
    cluster.nodes[coordinator].control["reconfigure"] = False
    cluster.run_until_converged(timeout=4_000)
    print(f"new configuration: {sorted(cluster.agreed_configuration())}")

    cluster.run(until=cluster.simulator.now + 200)
    alive = [vs for pid, vs in services.items() if not cluster.nodes[pid].crashed]
    print("state preserved across reconfiguration:",
          all(vs.machine.data.get("paper") == "self-stabilizing reconfiguration"
              for vs in alive if vs.machine.data))


if __name__ == "__main__":
    main()
