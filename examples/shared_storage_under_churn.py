#!/usr/bin/env python
"""Shared-memory (MWMR register) emulation under churn and transient faults.

This example mirrors the motivating scenario of the paper's introduction: a
dynamic shared-storage service whose replica set changes over time.  Writers
update a register through the virtually synchronous SMR; meanwhile a replica
crashes and a transient fault scrambles part of the protocol state.  The
register stays consistent and the service resumes after every disturbance.

The whole stack comes from the ``shared_register`` profile, and the
convergence conditions are the reusable probes from
:mod:`repro.analysis.probes` — no hand-wired services or ad-hoc wait loops.

Run with::

    python examples/shared_storage_under_churn.py
"""

from __future__ import annotations

from repro import build_cluster, fast_sim
from repro.analysis import probes
from repro.analysis.probes import wait_for
from repro.workloads.corruption import scramble_cluster


def main() -> None:
    cluster = build_cluster(n=5, seed=13, config=fast_sim(), stack="shared_register")
    registers = cluster.services("register")

    cluster.run_until_converged(timeout=2_000)
    wait_for(cluster, probes.view_installed(6_000))
    print("configuration:", sorted(cluster.agreed_configuration()))

    print("\n== writes from several writers ==")
    registers[0].write("v1-from-0")
    registers[2].write("v2-from-2")
    cluster.run_until(
        lambda: all(len(reg.history()) == 2 for reg in registers.values()),
        timeout=cluster.simulator.now + 800,
    )
    print("register value at node 4:", registers[4].read())
    print("write history:", registers[4].history())

    print("\n== crash of a replica + a transient fault ==")
    cluster.crash(1)
    scramble_cluster(cluster, seed=13, fraction=0.4)
    cluster.run_until_converged(timeout=10_000)
    wait_for(cluster, probes.view_installed(12_000))
    alive = [pid for pid in cluster.nodes if not cluster.nodes[pid].crashed]
    writer = alive[-1]
    registers[writer].write("v3-after-recovery")
    cluster.run_until(
        lambda: all(registers[pid].read() == "v3-after-recovery" for pid in alive),
        timeout=cluster.simulator.now + 4_000,
    )
    print("register value per replica after recovery:",
          {pid: registers[pid].read() for pid in alive})
    print("pending (not yet delivered) writes:",
          {pid: registers[pid].pending_writes() for pid in alive})
    agreement = wait_for(cluster, probes.register_agreement(2_000))
    print("histories identical (register consistency preserved):",
          agreement.satisfied)


if __name__ == "__main__":
    main()
