#!/usr/bin/env python
"""Shared-memory (MWMR register) emulation under churn and transient faults.

This example mirrors the motivating scenario of the paper's introduction: a
dynamic shared-storage service whose replica set changes over time.  Writers
update a register through the virtually synchronous SMR; meanwhile processors
crash, new ones join, and a transient fault scrambles part of the protocol
state.  The register stays consistent and the service resumes after every
disturbance.

Run with::

    python examples/shared_storage_under_churn.py
"""

from __future__ import annotations

from repro import build_cluster
from repro.counters.service import CounterService
from repro.vs.shared_memory import SharedRegister
from repro.vs.smr import RegisterStateMachine
from repro.vs.virtual_synchrony import VirtualSynchronyService, VSStatus
from repro.workloads.corruption import scramble_cluster


def wait_for_view(cluster, services, timeout=6_000):
    """Wait for an installed view led by an alive coordinator over alive members."""
    def _ready() -> bool:
        for pid, vs in services.items():
            if cluster.nodes[pid].crashed:
                continue
            if (
                vs.view is not None
                and vs.status is VSStatus.MULTICAST
                and vs.is_coordinator()
                and not any(cluster.nodes[m].crashed for m in vs.view.members)
            ):
                return True
        return False

    cluster.run_until(_ready, timeout=cluster.simulator.now + timeout)


def main() -> None:
    cluster = build_cluster(n=5, seed=13)
    services, registers = {}, {}
    for pid, node in cluster.nodes.items():
        counters = node.register_service(CounterService(pid, node.scheme, node._send_raw))
        vs = VirtualSynchronyService(
            pid, node.scheme, counters, node._send_raw,
            state_machine=RegisterStateMachine(),
        )
        node.register_service(vs)
        services[pid] = vs
        registers[pid] = SharedRegister(pid, vs)

    cluster.run_until_converged(timeout=2_000)
    wait_for_view(cluster, services)
    print("configuration:", sorted(cluster.agreed_configuration()))

    print("\n== writes from several writers ==")
    registers[0].write("v1-from-0")
    registers[2].write("v2-from-2")
    cluster.run_until(
        lambda: all(reg.vs.pending_count() == 0 for reg in registers.values()),
        timeout=cluster.simulator.now + 800,
    )
    print("register value at node 4:", registers[4].read())
    print("write history:", registers[4].history())

    print("\n== crash of a replica ==")
    cluster.crash(1)
    cluster.run_until_converged(timeout=10_000)
    wait_for_view(cluster, services, timeout=12_000)
    alive = [pid for pid in cluster.nodes if not cluster.nodes[pid].crashed]
    writer = alive[-1]
    registers[writer].write("v3-after-recovery")
    cluster.run_until(
        lambda: all(registers[pid].read() == "v3-after-recovery" for pid in alive),
        timeout=cluster.simulator.now + 4_000,
    )
    print("register value per replica after recovery:",
          {pid: registers[pid].read() for pid in alive})
    print("pending (not yet delivered) writes:",
          {pid: registers[pid].pending_writes() for pid in alive})
    print("histories identical (register consistency preserved):",
          len({tuple(registers[pid].history()) for pid in alive}) == 1)


if __name__ == "__main__":
    main()
