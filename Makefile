PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick bench-pytest

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full perf trajectory: writes BENCH_pr1.json at the repository root.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --tag pr1

# Smoke run (<60s) for CI: scalability + hotpath scenarios only.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --quick --tag pr1

# The pytest-benchmark experiment suite (E1-E12 + hotpath micro-benches).
bench-pytest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_hotpath.py -q
