PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick bench-matrix bench-pytest bench-scale bench-codec bench-sharded-cores bench-loadgen loadgen-baseline bench-cache bench-history runtime-smoke scenarios scenarios-smoke audit-smoke audit-gate audit-baseline audit-byzantine audit-n24 audit-n24-baseline audit-n128 audit-n128-baseline audit-n512-smoke audit-profile-grid audit-shrink-demo audit-warm-check

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full perf trajectory: writes BENCH_pr9.json at the repository root.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --tag pr9

# Smoke run (<60s) for CI: scalability + hotpath + scenario-matrix scenarios.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --quick --tag pr9

# The large-topology throughput curve (PR 7 scale push): fixed-window event
# cost at n=24..256 plus bootstrap-to-convergence where tractable, with the
# pre-PR7 baseline embedded for the before/after comparison.
bench-scale:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --only scale_curve --tag pr7

# Matrix-throughput timing only (cold bootstrap-per-run vs warm prefix
# snapshots, runs/sec): the audit job runs this and uploads the JSON next to
# the AUDIT_*.json verdicts so sweep wall-clock is tracked per commit.
bench-matrix:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --quick --only matrix_throughput --output AUDIT_matrix_timing.json

# Live-runtime CI smoke: boot an n=8 asyncio/UDP cluster on localhost,
# require bootstrap convergence, kill a node (survivors must evict it),
# restart it as a joiner (must be re-admitted) — all inside one wall-clock
# budget.  Exit 1 on any missed milestone.
runtime-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.runtime --smoke --n 8 --budget 60

# Codec microbenchmark: every hot wire type through both formats (binary
# fast path vs tagged-JSON fallback), ns/op + frame bytes + speedup.
# Writes the dev-path artifact; the committed trail lives in BENCH_pr9.json.
bench-codec:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --only codec_micro --output BENCH_dev_codec.json

# Fork-sharded simulator wall-clock vs the serial baseline on this machine's
# cores (skips with a recorded reason on single-CPU boxes).
bench-sharded-cores:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --only sharded_cores --output BENCH_dev_sharded.json

# Closed-loop load generator against the live asyncio runtime: client
# sessions driving counter increments and SMR commands, a mid-run
# kill/recover probe, and the clients-axis sweep (multi-process drivers
# above 32 clients).  Writes BENCH_pr9.json and fails if counters ops/s
# drops below 75% of the checked-in baseline.
bench-loadgen:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.runtime.loadgen --mode both --kill-probe --duration 8 --clients 16 --sweep-clients 16,32,64,128,256 --baseline benchmarks/loadgen_baseline.json --tag pr9 --output BENCH_pr9.json

# Re-pin the loadgen throughput baseline after a deliberate perf change
# (quick single-point run; copies the counters number into the baseline).
loadgen-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.runtime.loadgen --mode counters --duration 8 --clients 16 --tag baseline --output BENCH_dev_loadgen.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -c "import json; r=json.load(open('BENCH_dev_loadgen.json')); c=r['modes']['counters']; json.dump({'bench':'loadgen_baseline','counters_ops_s':c['throughput_ops_s'],'clients':c['clients'],'n':c['n'],'note':'re-pin via make loadgen-baseline'},open('benchmarks/loadgen_baseline.json','w'),indent=2)"

# Persistent sweep cache cold-vs-warm timing (PR 10 headline): the smoke
# matrix certified twice against a fresh store — the warm pass must be >= 5x
# faster with byte-identical deterministic verdicts — plus the incremental
# extension leg (new corruption seeds resuming disk-warm prefixes).
bench-cache:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --only sweep_cache --tag pr10

# Collate every committed BENCH_pr*.json into one perf-trajectory table
# (BENCH_history.md + BENCH_history.json at the repository root).
bench-history:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m benchmarks.history

# The pytest-benchmark experiment suite (E1-E12 + hotpath micro-benches).
bench-pytest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_hotpath.py -q

# The declarative scenario library: 4-seed sweep on 4 workers.
scenarios:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --seeds 0:4 --workers 4

# CI gate: every registered scenario once, seed 0, nonzero exit on failure.
scenarios-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --smoke

# Adversarial audit matrix: static schedulers x 2 corruption seeds + the
# dynamic adversaries + SMR-stack cases with smr_agreement armed + two
# Byzantine traitor cases, 3 sim seeds each (54 runs); verdict JSON written
# for the CI artifact upload.
audit-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --smoke --workers 4 --output AUDIT_smoke.json

# Byzantine matrix: f < n/3 traitors running every registered behavior
# against the Bracha/Dolev reliable-broadcast stacks and the adaptive
# coordinator-traitor against vs_smr_rb, with rb_agreement / rb_validity /
# smr_agreement armed (18 runs).
audit-byzantine:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --byzantine --workers 4 --output AUDIT_byzantine.json

# Convergence-bound regression gate: fail when the smoke matrix's worst-case
# stabilization time regresses >25% vs the checked-in baseline.
audit-gate: audit-smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_smoke.json --baseline benchmarks/audit_baseline.json

# Re-pin the baseline after a deliberate convergence-bound change.
audit-baseline: audit-smoke
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_smoke.json --baseline benchmarks/audit_baseline.json --refresh

# The large-topology tier: n=24, paper_faithful config, two dynamic
# adversaries, corruption at t=120 (after bootstrap convergence at ~t=83).
# Tractable because of the sweep engine: warm prefix snapshots share each
# adversary's bootstrap across corruption seeds (or cold-parallel workers
# take over when idle cores outnumber the fan-out).
audit-n24:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --tier n24 --workers 4 --output AUDIT_n24.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_n24.json --tier n24 --baseline benchmarks/audit_baseline.json

# Re-pin the n24 tier's bounds (preserves the smoke bounds).
audit-n24-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --tier n24 --workers 4 --output AUDIT_n24.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_n24.json --tier n24 --baseline benchmarks/audit_baseline.json --refresh

# The scale tier: n=128, coherent start with fd_gap_slack=2n, full-state
# ("default") and channel-only corruption at t=20 under one static and one
# dynamic adversary — certifies re-convergence of a converged 128-processor
# system and gates its stabilization bound (tiers.n128 in the baseline).
audit-n128:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --tier n128 --workers 2 --output AUDIT_n128.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_n128.json --tier n128 --baseline benchmarks/audit_baseline.json

# Re-pin the n128 tier's bounds (preserves the smoke and n24 bounds).
audit-n128-baseline:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --tier n128 --workers 2 --output AUDIT_n128.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.gate AUDIT_n128.json --tier n128 --baseline benchmarks/audit_baseline.json --refresh

# Soft n=512 smoke: coherent cluster, 2-sim-unit window; reports event counts
# and wall clock, fails only on a dead cluster (never on timing).
audit-n512-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --scale-smoke 512 --output AUDIT_n512_smoke.json

# Stabilization-time distributions across corruption intensity (light/
# default/heavy CorruptionProfile grid).
audit-profile-grid:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --profile-grid --workers 4 --seeds 0:2 --output AUDIT_profile_grid.json

# Demonstrate reproducer shrinking against a deliberately broken invariant.
audit-shrink-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --demo-shrink --output AUDIT_shrink_demo.json

# Warm-cache CI check: the smoke matrix twice against one shared cache
# directory — the second run must answer >= 90% of cells from the store with
# verdicts byte-identical to the first (python -m repro.audit.store check).
audit-warm-check:
	rm -rf .audit_cache_ci
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --smoke --workers 4 --cache-dir .audit_cache_ci --output AUDIT_smoke_cold.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --smoke --workers 4 --cache-dir .audit_cache_ci --output AUDIT_smoke_warm.json
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.store check AUDIT_smoke_warm.json --against AUDIT_smoke_cold.json --min-hit-rate 0.9
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit.store stats --cache-dir .audit_cache_ci
