PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick bench-pytest scenarios scenarios-smoke

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full perf trajectory: writes BENCH_pr2.json at the repository root.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --tag pr2

# Smoke run (<60s) for CI: scalability + hotpath + scenario-matrix scenarios.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --quick --tag pr2

# The pytest-benchmark experiment suite (E1-E12 + hotpath micro-benches).
bench-pytest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_hotpath.py -q

# The declarative scenario library: 4-seed sweep on 4 workers.
scenarios:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --seeds 0:4 --workers 4

# CI gate: every registered scenario once, seed 0, nonzero exit on failure.
scenarios-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --smoke
