PYTHON ?= python
PYTHONPATH := src

.PHONY: test bench bench-quick bench-pytest scenarios scenarios-smoke audit-smoke audit-shrink-demo

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Full perf trajectory: writes BENCH_pr3.json at the repository root.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --tag pr3

# Smoke run (<60s) for CI: scalability + hotpath + scenario-matrix scenarios.
bench-quick:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) benchmarks/run_bench.py --quick --tag pr3

# The pytest-benchmark experiment suite (E1-E12 + hotpath micro-benches).
bench-pytest:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks/bench_scalability.py benchmarks/bench_hotpath.py -q

# The declarative scenario library: 4-seed sweep on 4 workers.
scenarios:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --seeds 0:4 --workers 4

# CI gate: every registered scenario once, seed 0, nonzero exit on failure.
scenarios-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.scenarios --smoke

# Adversarial audit gate: every scheduler x 2 corruption seeds x 3 sim seeds
# (30 runs), verdict JSON written for the CI artifact upload.
audit-smoke:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --smoke --workers 4 --output AUDIT_smoke.json

# Demonstrate reproducer shrinking against a deliberately broken invariant.
audit-shrink-demo:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.audit --demo-shrink --output AUDIT_shrink_demo.json
